// Package store is a small persistent result store: an append-only
// JSON-lines file with an in-memory index, keyed by content digests of
// whatever identifies a computation (machine configuration, workload,
// run options). It lets repeated experiment runs — e.g. cmd/experiments
// regenerating every table — reuse simulation results across processes.
//
// The format is one JSON object per line: {"key": "...", "value": ...}.
// Rewritten keys append a new line; the last line for a key wins on
// reload, so the file never needs in-place editing and concurrent
// appenders (O_APPEND) cannot corrupt earlier records.
package store

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// Digest hashes the JSON encodings of vs into a stable hex key. Include a
// schema label as the first value so format changes invalidate old
// entries instead of misdecoding them.
func Digest(vs ...any) string {
	h := sha256.New()
	enc := json.NewEncoder(h)
	for _, v := range vs {
		if err := enc.Encode(v); err != nil {
			// Hash the error text instead: the key is still deterministic,
			// it just never matches a successfully encoded entry.
			fmt.Fprintf(h, "!enc-error:%v", err)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// record is the on-disk line format.
type record struct {
	Key   string          `json:"key"`
	Value json.RawMessage `json:"value"`
}

// Store is a digest-keyed persistent map. Safe for concurrent use within
// one process; across processes, appends are atomic per line and reloads
// take the last write.
type Store struct {
	mu    sync.Mutex
	f     *os.File
	path  string
	index map[string]json.RawMessage
}

// Open loads (or creates) the store at path.
func Open(path string) (*Store, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{f: f, path: path, index: make(map[string]json.RawMessage)}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var r record
		if err := json.Unmarshal(line, &r); err != nil {
			// A torn final line from a crashed writer is recoverable;
			// ignore it and let the entry be recomputed.
			continue
		}
		s.index[r.Key] = r.Value
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: reading %s: %w", path, err)
	}
	return s, nil
}

// Path returns the backing file's path.
func (s *Store) Path() string { return s.path }

// Len returns the number of distinct keys.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Get decodes the stored value for key into v, reporting whether the key
// was present.
func (s *Store) Get(key string, v any) (bool, error) {
	s.mu.Lock()
	raw, ok := s.index[key]
	s.mu.Unlock()
	if !ok {
		return false, nil
	}
	if err := json.Unmarshal(raw, v); err != nil {
		return false, fmt.Errorf("store: decoding %s: %w", key, err)
	}
	return true, nil
}

// Put stores v under key, appending to the backing file.
func (s *Store) Put(key string, v any) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("store: encoding %s: %w", key, err)
	}
	line, err := json.Marshal(record{Key: key, Value: raw})
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	line = append(line, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.f.Write(line); err != nil {
		return fmt.Errorf("store: appending to %s: %w", s.path, err)
	}
	s.index[key] = raw
	return nil
}

// Close releases the backing file.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Close()
}
