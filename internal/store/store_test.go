package store

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
)

type payload struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(filepath.Join(t.TempDir(), "s.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	in := payload{Name: "swim", Value: 1.25}
	if err := s.Put("k1", in); err != nil {
		t.Fatal(err)
	}
	var out payload
	ok, err := s.Get("k1", &out)
	if err != nil || !ok {
		t.Fatalf("get: ok=%v err=%v", ok, err)
	}
	if out != in {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
	if ok, _ := s.Get("absent", &out); ok {
		t.Fatal("absent key reported present")
	}
}

func TestReopenPersists(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.jsonl")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("a", payload{Name: "first", Value: 1}); err != nil {
		t.Fatal(err)
	}
	// Rewrite the same key: the newest value must win after reload.
	if err := s.Put("a", payload{Name: "second", Value: 2}); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("b", payload{Name: "other", Value: 3}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 2 {
		t.Fatalf("reloaded %d keys, want 2", s2.Len())
	}
	var out payload
	if ok, _ := s2.Get("a", &out); !ok || out.Name != "second" {
		t.Fatalf("last write did not win: %+v", out)
	}
}

func TestTornTrailingLineIgnored(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.jsonl")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("good", payload{Name: "x", Value: 1}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"key":"torn","value":{"na`) // crashed writer
	f.Close()

	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	var out payload
	if ok, _ := s2.Get("good", &out); !ok {
		t.Fatal("torn line destroyed earlier records")
	}
	if ok, _ := s2.Get("torn", &out); ok {
		t.Fatal("torn record decoded")
	}
}

func TestConcurrentPutGet(t *testing.T) {
	s, err := Open(filepath.Join(t.TempDir(), "s.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			k := Digest("key", i%4)
			if err := s.Put(k, payload{Value: float64(i)}); err != nil {
				t.Error(err)
			}
			var out payload
			if ok, err := s.Get(k, &out); !ok || err != nil {
				t.Errorf("get %s: ok=%v err=%v", k, ok, err)
			}
		}(i)
	}
	wg.Wait()
	if s.Len() != 4 {
		t.Fatalf("len = %d, want 4", s.Len())
	}
}

func TestDigestStability(t *testing.T) {
	type cfg struct{ A, B int }
	a := Digest("v1", cfg{1, 2})
	b := Digest("v1", cfg{1, 2})
	c := Digest("v1", cfg{2, 1})
	d := Digest("v2", cfg{1, 2})
	if a != b {
		t.Fatal("digest not deterministic")
	}
	if a == c || a == d {
		t.Fatal("digest collides across distinct inputs")
	}
	if len(a) != 64 {
		t.Fatalf("digest length %d", len(a))
	}
}
