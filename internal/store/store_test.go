package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

type payload struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(filepath.Join(t.TempDir(), "s"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	in := payload{Name: "swim", Value: 1.25}
	if err := s.Put("k1", in); err != nil {
		t.Fatal(err)
	}
	var out payload
	ok, err := s.Get("k1", &out)
	if err != nil || !ok {
		t.Fatalf("get: ok=%v err=%v", ok, err)
	}
	if out != in {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
	if ok, _ := s.Get("absent", &out); ok {
		t.Fatal("absent key reported present")
	}
}

func TestReopenPersists(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("a", payload{Name: "first", Value: 1}); err != nil {
		t.Fatal(err)
	}
	// Rewrite the same key: the newest value must win after reload.
	if err := s.Put("a", payload{Name: "second", Value: 2}); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("b", payload{Name: "other", Value: 3}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 2 {
		t.Fatalf("reloaded %d keys, want 2", s2.Len())
	}
	var out payload
	if ok, _ := s2.Get("a", &out); !ok || out.Name != "second" {
		t.Fatalf("last write did not win: %+v", out)
	}
}

func TestConcurrentPutGet(t *testing.T) {
	s, err := Open(filepath.Join(t.TempDir(), "s"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			k := Digest("key", i%4)
			if err := s.Put(k, payload{Value: float64(i)}); err != nil {
				t.Error(err)
			}
			var out payload
			if ok, err := s.Get(k, &out); !ok || err != nil {
				t.Errorf("get %s: ok=%v err=%v", k, ok, err)
			}
		}(i)
	}
	wg.Wait()
	if s.Len() != 4 {
		t.Fatalf("len = %d, want 4", s.Len())
	}
}

func TestDigestStability(t *testing.T) {
	type cfg struct{ A, B int }
	a := Digest("v1", cfg{1, 2})
	b := Digest("v1", cfg{1, 2})
	c := Digest("v1", cfg{2, 1})
	d := Digest("v2", cfg{1, 2})
	if a != b {
		t.Fatal("digest not deterministic")
	}
	if a == c || a == d {
		t.Fatal("digest collides across distinct inputs")
	}
	if len(a) != 64 {
		t.Fatalf("digest length %d", len(a))
	}
}

func TestRangeVisitsEveryKey(t *testing.T) {
	s, err := Open(filepath.Join(t.TempDir(), "s"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	want := map[string]bool{}
	for i := 0; i < 20; i++ {
		k := Digest("range", i)
		want[k] = true
		if err := s.Put(k, payload{Value: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	got := map[string]bool{}
	s.Range(func(k string, _ json.RawMessage) bool {
		got[k] = true
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Range visited %d keys, want %d", len(got), len(want))
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("Range missed %s", k)
		}
	}
}

// TestPutRollbackOnWriteError pins the durability contract satellite: a
// failed (torn) append must leave the index and the file agreeing — the
// key absent from both — and the store must keep working afterwards.
func TestPutRollbackOnWriteError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("good", payload{Name: "x", Value: 1}); err != nil {
		t.Fatal(err)
	}
	s.FailNextAppend("victim", 7) // write 7 bytes of the record, then fail
	if err := s.Put("victim", payload{Name: "torn", Value: 2}); err == nil {
		t.Fatal("injected write failure did not surface")
	}
	var out payload
	if ok, _ := s.Get("victim", &out); ok {
		t.Fatal("failed Put left the key in the index")
	}
	// The torn bytes must have been rolled back: the next Put lands on a
	// record boundary and both keys survive a reopen.
	if err := s.Put("victim", payload{Name: "retry", Value: 3}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if ok, _ := s2.Get("good", &out); !ok {
		t.Fatal("pre-failure key lost")
	}
	if ok, _ := s2.Get("victim", &out); !ok || out.Name != "retry" {
		t.Fatalf("post-failure retry lost: ok=%v %+v", ok, out)
	}
	if st := s2.Stats(); st.Quarantined != 0 || st.TornTails != 0 {
		t.Fatalf("rollback left residue on disk: %+v", st)
	}
}

// TestLegacyJSONLMigration pins the migration shim satellite: a
// pre-segments single-file store opens transparently, keeps every entry
// (including last-write-wins and torn-tail skipping), and never
// double-imports.
func TestLegacyJSONLMigration(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "results.jsonl")
	legacy := strings.Join([]string{
		`{"key":"a","value":{"name":"first","value":1}}`,
		`{"key":"b","value":{"name":"other","value":3}}`,
		`{"key":"a","value":{"name":"second","value":2}}`,
		`{"key":"torn","value":{"na`, // crashed old-format writer
	}, "\n")
	if err := os.WriteFile(path, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Stats().Migrated {
		t.Fatal("Stats.Migrated not reported")
	}
	var out payload
	if ok, _ := s.Get("a", &out); !ok || out.Name != "second" {
		t.Fatalf("legacy last-write-wins lost: %+v", out)
	}
	if ok, _ := s.Get("b", &out); !ok {
		t.Fatal("legacy key lost")
	}
	if ok, _ := s.Get("torn", &out); ok {
		t.Fatal("torn legacy line imported")
	}
	// The original must survive as a backup, and new writes must land in
	// segments.
	if _, err := os.Stat(path + legacyBackupSuffix); err != nil {
		t.Fatalf("legacy backup missing: %v", err)
	}
	if err := s.Put("a", payload{Name: "post-migration", Value: 9}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Reopen: no double import — the post-migration write still wins.
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Stats().Migrated {
		t.Fatal("second open re-imported the legacy file")
	}
	if ok, _ := s2.Get("a", &out); !ok || out.Name != "post-migration" {
		t.Fatalf("backup stomped a post-migration write: %+v", out)
	}
	if s2.Len() != 2 {
		t.Fatalf("len = %d, want 2", s2.Len())
	}
}

// TestCompactionDropsSuperseded pins that compaction rewrites a shard to
// only its live records and that everything survives a reopen.
func TestCompactionDropsSuperseded(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s")
	s, err := OpenWith(path, Options{NoAutoCompact: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		// Same 5 keys rewritten 10 times: 90% dead bytes.
		if err := s.Put(Digest("ck", i%5), payload{Value: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	before := s.Stats()
	if before.DeadBytes == 0 {
		t.Fatal("expected dead bytes before compaction")
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	after := s.Stats()
	if after.DeadBytes != 0 {
		t.Fatalf("compaction left %d dead bytes", after.DeadBytes)
	}
	if after.Keys != 5 {
		t.Fatalf("compaction changed key count: %d", after.Keys)
	}
	if after.Compactions == 0 || after.LastCompaction.IsZero() {
		t.Fatalf("compaction not recorded: %+v", after)
	}
	// Post-compaction writes and reload still work.
	if err := s.Put(Digest("ck", 0), payload{Value: 99}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	var out payload
	for i := 0; i < 5; i++ {
		want := float64(45 + i)
		if i == 0 {
			want = 99
		}
		if ok, _ := s2.Get(Digest("ck", i), &out); !ok || out.Value != want {
			t.Fatalf("key %d after compaction+reopen: ok=%v got=%v want=%v", i, ok, out.Value, want)
		}
	}
}

// TestAutoCompactionTriggers pins the dead-bytes trigger: rewriting one
// key far past the threshold must shrink the shard without any explicit
// Compact call.
func TestAutoCompactionTriggers(t *testing.T) {
	s, err := Open(filepath.Join(t.TempDir(), "s"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	big := payload{Name: strings.Repeat("x", 4096)}
	for i := 0; i < 64; i++ { // ~256 KiB of rewrites of one key
		if err := s.Put("hot", big); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Compactions == 0 {
		t.Fatalf("auto-compaction never fired: %+v", st)
	}
	if st.DeadBytes > compactMinDead {
		t.Fatalf("dead bytes not reclaimed: %+v", st)
	}
	var out payload
	if ok, _ := s.Get("hot", &out); !ok || out.Name != big.Name {
		t.Fatal("auto-compaction lost the live value")
	}
}

// TestShardCountPinnedByMeta pins that reopening with a different
// Options.Shards keeps the created layout (meta.json wins), so the key →
// file mapping never shifts under an existing store.
func TestShardCountPinnedByMeta(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s")
	s, err := OpenWith(path, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		if err := s.Put(Digest("sp", i), payload{Value: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	s2, err := OpenWith(path, Options{Shards: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Stats().Shards; got != 4 {
		t.Fatalf("shard count drifted to %d, want pinned 4", got)
	}
	if s2.Len() != 32 {
		t.Fatalf("len = %d, want 32", s2.Len())
	}
	var out payload
	for i := 0; i < 32; i++ {
		if ok, _ := s2.Get(Digest("sp", i), &out); !ok || out.Value != float64(i) {
			t.Fatalf("key %d lost across shard-option change", i)
		}
	}
}

func TestSyncAlwaysPolicy(t *testing.T) {
	// Behavioral smoke only (fsync effects need a power cut): SyncAlways
	// must not change observable semantics.
	path := filepath.Join(t.TempDir(), "j")
	s, err := OpenWith(path, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), payload{Value: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 10 {
		t.Fatalf("len = %d, want 10", s2.Len())
	}
}
