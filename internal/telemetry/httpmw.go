package telemetry

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"
)

// HTTPMetrics instruments an http.ServeMux: per-route request counts by
// status class, an in-flight gauge, per-route latency histograms, a
// request ID on every request (context + X-Request-Id header), and a
// structured access log carrying all of it.
type HTTPMetrics struct {
	requests *CounterVec   // {route, code}: code is the status class ("2xx")
	latency  *HistogramVec // {route}
	inflight *Gauge
	log      *slog.Logger
	nextID   atomic.Uint64
}

// NewHTTPMetrics registers the middleware's families on reg under the
// given namespace (e.g. "shrecd" → shrecd_http_requests_total). A nil
// logger discards the access log.
func NewHTTPMetrics(reg *Registry, namespace string, log *slog.Logger) *HTTPMetrics {
	if log == nil {
		log = NopLogger()
	}
	return &HTTPMetrics{
		requests: reg.CounterVec(namespace+"_http_requests_total",
			"HTTP requests served, by route pattern and status class.", "route", "code"),
		latency: reg.HistogramVec(namespace+"_http_request_seconds",
			"HTTP request latency by route pattern.", DefTimeBuckets(), "route"),
		inflight: reg.Gauge(namespace+"_http_in_flight",
			"HTTP requests currently being served."),
		log: log,
	}
}

type requestIDKey struct{}

// WithRequestID attaches a request ID to the context.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestIDFrom returns the context's request ID ("" when absent), so
// handlers can stamp it onto their own log records.
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// statusRecorder captures the response status for the metrics and log.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.code == 0 {
		r.code = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

// Unwrap supports http.ResponseController passthrough.
func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// Wrap instruments the mux. The route label is the mux pattern that
// matched ("GET /campaigns/{id}"), never the raw URL — raw paths would
// explode label cardinality with every distinct job id scraped.
func (m *HTTPMetrics) Wrap(mux *http.ServeMux) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := fmt.Sprintf("req-%06d", m.nextID.Add(1))
		r = r.WithContext(WithRequestID(r.Context(), id))
		w.Header().Set("X-Request-Id", id)

		route := "unmatched"
		if _, pattern := mux.Handler(r); pattern != "" {
			route = pattern
		}
		rec := &statusRecorder{ResponseWriter: w}
		m.inflight.Add(1)
		start := time.Now()
		mux.ServeHTTP(rec, r)
		elapsed := time.Since(start)
		m.inflight.Add(-1)

		if rec.code == 0 {
			rec.code = http.StatusOK
		}
		m.requests.With(route, statusClass(rec.code)).Inc()
		m.latency.With(route).Observe(elapsed.Seconds())

		lv := slog.LevelDebug
		if rec.code >= 500 {
			lv = slog.LevelWarn
		}
		m.log.Log(r.Context(), lv, "http request",
			"request_id", id,
			"method", r.Method,
			"path", r.URL.Path,
			"route", route,
			"status", rec.code,
			"elapsed_ms", float64(elapsed.Microseconds())/1000)
	})
}

// statusClass buckets a status code ("2xx", "4xx", ...).
func statusClass(code int) string {
	if code < 100 || code > 599 {
		return "other"
	}
	return strconv.Itoa(code/100) + "xx"
}
