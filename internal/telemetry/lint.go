package telemetry

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Lint parses Prometheus text exposition line-by-line and returns every
// format violation found (nil when clean): HELP/TYPE present and paired
// before any sample of the family, valid metric-name and label charsets,
// parseable values, no duplicate series, and — for histogram families —
// strictly increasing le bounds, monotone nondecreasing cumulative
// bucket counts, a closing +Inf bucket that equals _count, and a _sum
// sample. The shrecd renderer is pinned by this in tests and in the
// observability smoke job, so malformed exposition text can never ship.
func Lint(r io.Reader) error {
	var errs []error
	fail := func(line int, format string, args ...any) {
		errs = append(errs, fmt.Errorf("line %d: %s", line, fmt.Sprintf(format, args...)))
	}

	type famState struct {
		help, typed bool
		kind        string
		sampled     bool
	}
	fams := make(map[string]*famState)
	fam := func(name string) *famState {
		f, ok := fams[name]
		if !ok {
			f = &famState{}
			fams[name] = f
		}
		return f
	}
	// histogram bucket/series bookkeeping, keyed by family then by the
	// series' non-le labels.
	type histSeries struct {
		les     []float64
		counts  []float64
		sum     bool
		count   float64
		hasCnt  bool
		anyLine int
	}
	hists := make(map[string]map[string]*histSeries)
	seen := make(map[string]int) // full sample key -> line (duplicate detection)

	// baseFamily resolves a sample name to its declared family: histogram
	// samples are name_bucket/_sum/_count of a TYPE histogram family.
	baseFamily := func(name string) (string, string) {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suf)
			if base != name {
				if f, ok := fams[base]; ok && f.kind == "histogram" {
					return base, suf
				}
			}
		}
		return name, ""
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	n := 0
	for sc.Scan() {
		n++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, rest, ok := parseComment(line)
			if !ok {
				continue // free-form comments are legal
			}
			f := fam(name)
			switch kind {
			case "HELP":
				if f.help {
					fail(n, "duplicate HELP for %s", name)
				}
				f.help = true
			case "TYPE":
				if f.typed {
					fail(n, "duplicate TYPE for %s", name)
				}
				if f.sampled {
					fail(n, "TYPE for %s after its samples", name)
				}
				switch rest {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					fail(n, "unknown TYPE %q for %s", rest, name)
				}
				f.typed = true
				f.kind = rest
			}
			continue
		}

		name, labels, value, err := parseSample(line)
		if err != nil {
			fail(n, "%v", err)
			continue
		}
		if !nameRE.MatchString(name) {
			fail(n, "invalid metric name %q", name)
		}
		le := ""
		var restLabels []string
		for _, l := range labels {
			k, v, _ := strings.Cut(l, "=")
			if !labelRE.MatchString(k) {
				fail(n, "invalid label name %q", k)
			}
			if k == "le" {
				le = v
			} else {
				restLabels = append(restLabels, l)
			}
		}
		sort.Strings(restLabels)
		seriesKey := name + "{" + strings.Join(labels, ",") + "}"
		if prev, dup := seen[seriesKey]; dup {
			fail(n, "duplicate series %s (first at line %d)", seriesKey, prev)
		}
		seen[seriesKey] = n

		base, suffix := baseFamily(name)
		f := fam(base)
		f.sampled = true
		if !f.help {
			fail(n, "sample of %s before (or without) its HELP", base)
		}
		if !f.typed {
			fail(n, "sample of %s before (or without) its TYPE", base)
		}
		if f.kind == "histogram" {
			hk := strings.Join(restLabels, ",")
			hm := hists[base]
			if hm == nil {
				hm = make(map[string]*histSeries)
				hists[base] = hm
			}
			hs := hm[hk]
			if hs == nil {
				hs = &histSeries{}
				hm[hk] = hs
			}
			hs.anyLine = n
			switch suffix {
			case "_bucket":
				if le == "" {
					fail(n, "histogram bucket of %s without le label", base)
					continue
				}
				bound, err := parseLe(le)
				if err != nil {
					fail(n, "histogram %s: bad le %q", base, le)
					continue
				}
				hs.les = append(hs.les, bound)
				hs.counts = append(hs.counts, value)
			case "_sum":
				hs.sum = true
			case "_count":
				hs.hasCnt = true
				hs.count = value
			default:
				fail(n, "histogram family %s has plain sample %s", base, name)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}

	// Histogram series invariants, checked after the full scan.
	for base, hm := range hists {
		for hk, hs := range hm {
			at := func(format string, args ...any) {
				errs = append(errs, fmt.Errorf("histogram %s{%s} (near line %d): %s",
					base, hk, hs.anyLine, fmt.Sprintf(format, args...)))
			}
			if len(hs.les) == 0 {
				at("no buckets")
				continue
			}
			for i := 1; i < len(hs.les); i++ {
				if !(hs.les[i] > hs.les[i-1]) {
					at("le bounds not strictly increasing (%g after %g)", hs.les[i], hs.les[i-1])
				}
				if hs.counts[i] < hs.counts[i-1] {
					at("cumulative bucket counts decrease (%g after %g at le=%g)",
						hs.counts[i], hs.counts[i-1], hs.les[i])
				}
			}
			last := hs.les[len(hs.les)-1]
			if !math.IsInf(last, 1) {
				at("missing +Inf bucket")
			} else if hs.hasCnt && hs.counts[len(hs.counts)-1] != hs.count {
				at("_count %g != +Inf bucket %g", hs.count, hs.counts[len(hs.counts)-1])
			}
			if !hs.hasCnt {
				at("missing _count")
			}
			if !hs.sum {
				at("missing _sum")
			}
		}
	}
	return errors.Join(errs...)
}

// parseComment splits "# HELP name rest" / "# TYPE name rest" comments.
func parseComment(line string) (kind, name, rest string, ok bool) {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 || fields[0] != "#" {
		return "", "", "", false
	}
	if fields[1] != "HELP" && fields[1] != "TYPE" {
		return "", "", "", false
	}
	if len(fields) == 4 {
		rest = fields[3]
	}
	return fields[1], fields[2], rest, true
}

// parseSample splits one sample line into name, raw "k=v" labels (values
// still quoted-unescaped), and value.
func parseSample(line string) (name string, labels []string, value float64, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		end := strings.LastIndexByte(rest, '}')
		if end < i {
			return "", nil, 0, fmt.Errorf("unclosed label braces in %q", line)
		}
		inner := rest[i+1 : end]
		rest = strings.TrimSpace(rest[end+1:])
		for inner != "" {
			eq := strings.IndexByte(inner, '=')
			if eq < 0 {
				return "", nil, 0, fmt.Errorf("label without '=' in %q", line)
			}
			k := inner[:eq]
			if eq+1 >= len(inner) || inner[eq+1] != '"' {
				return "", nil, 0, fmt.Errorf("unquoted label value in %q", line)
			}
			v, w, verr := unquoteLabel(inner[eq+1:])
			if verr != nil {
				return "", nil, 0, fmt.Errorf("bad label value in %q: %v", line, verr)
			}
			labels = append(labels, k+"="+v)
			inner = inner[eq+1+w:]
			inner = strings.TrimPrefix(inner, ",")
		}
	} else {
		sp := strings.IndexByte(rest, ' ')
		if sp < 0 {
			return "", nil, 0, fmt.Errorf("sample without value in %q", line)
		}
		name = rest[:sp]
		rest = strings.TrimSpace(rest[sp:])
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // optional trailing timestamp
		return "", nil, 0, fmt.Errorf("malformed sample %q", line)
	}
	value, err = parseValue(fields[0])
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad value %q in %q", fields[0], line)
	}
	return name, labels, value, nil
}

// unquoteLabel reads one quoted label value starting at the opening
// quote, returning the unescaped value and the width consumed.
func unquoteLabel(s string) (val string, width int, err error) {
	if len(s) == 0 || s[0] != '"' {
		return "", 0, fmt.Errorf("missing opening quote")
	}
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if i+1 >= len(s) {
				return "", 0, fmt.Errorf("dangling escape")
			}
			i++
			switch s[i] {
			case '\\', '"':
				b.WriteByte(s[i])
			case 'n':
				b.WriteByte('\n')
			default:
				return "", 0, fmt.Errorf("unknown escape \\%c", s[i])
			}
		case '"':
			return b.String(), i + 1, nil
		default:
			b.WriteByte(s[i])
		}
	}
	return "", 0, fmt.Errorf("unterminated quote")
}

// parseLe parses a bucket bound, accepting "+Inf".
func parseLe(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	return strconv.ParseFloat(s, 64)
}

// parseValue parses a sample value, accepting the exposition spellings
// of the non-finite floats.
func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}
