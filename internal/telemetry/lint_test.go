package telemetry

import (
	"strings"
	"testing"
)

func lintErr(t *testing.T, text string) string {
	t.Helper()
	err := Lint(strings.NewReader(text))
	if err == nil {
		t.Fatalf("lint passed, want failure:\n%s", text)
	}
	return err.Error()
}

func TestLintClean(t *testing.T) {
	clean := `# HELP a_total counter
# TYPE a_total counter
a_total 3
# HELP h_seconds histogram
# TYPE h_seconds histogram
h_seconds_bucket{stage="x",le="0.1"} 1
h_seconds_bucket{stage="x",le="+Inf"} 2
h_seconds_sum{stage="x"} 1.5
h_seconds_count{stage="x"} 2
`
	if err := Lint(strings.NewReader(clean)); err != nil {
		t.Fatalf("clean text failed lint: %v", err)
	}
}

func TestLintViolations(t *testing.T) {
	cases := map[string]struct {
		text string
		want string
	}{
		"sample without HELP/TYPE": {
			text: "orphan_total 1\n",
			want: "without",
		},
		"TYPE after samples": {
			text: "# HELP x h\nx 1\n# TYPE x counter\n",
			want: "after its samples",
		},
		"unknown TYPE": {
			text: "# HELP x h\n# TYPE x widget\nx 1\n",
			want: "unknown TYPE",
		},
		"bad metric name": {
			text: "# HELP x h\n# TYPE x counter\nx 1\n0bad 2\n",
			want: "invalid metric name",
		},
		"duplicate series": {
			text: "# HELP x h\n# TYPE x counter\nx 1\nx 2\n",
			want: "duplicate series",
		},
		"bad value": {
			text: "# HELP x h\n# TYPE x counter\nx banana\n",
			want: "bad value",
		},
		"unquoted label": {
			text: "# HELP x h\n# TYPE x counter\nx{a=b} 1\n",
			want: "unquoted label value",
		},
		"non-monotone histogram counts": {
			text: "# HELP h h\n# TYPE h histogram\n" +
				`h_bucket{le="1"} 5` + "\n" +
				`h_bucket{le="+Inf"} 3` + "\n" +
				"h_sum 1\nh_count 3\n",
			want: "counts decrease",
		},
		"non-increasing le bounds": {
			text: "# HELP h h\n# TYPE h histogram\n" +
				`h_bucket{le="2"} 1` + "\n" +
				`h_bucket{le="1"} 2` + "\n" +
				`h_bucket{le="+Inf"} 2` + "\n" +
				"h_sum 1\nh_count 2\n",
			want: "strictly increasing",
		},
		"missing +Inf bucket": {
			text: "# HELP h h\n# TYPE h histogram\n" +
				`h_bucket{le="1"} 1` + "\n" +
				"h_sum 1\nh_count 1\n",
			want: "missing +Inf",
		},
		"count mismatch": {
			text: "# HELP h h\n# TYPE h histogram\n" +
				`h_bucket{le="+Inf"} 2` + "\n" +
				"h_sum 1\nh_count 3\n",
			want: "_count",
		},
		"missing _sum": {
			text: "# HELP h h\n# TYPE h histogram\n" +
				`h_bucket{le="+Inf"} 1` + "\n" +
				"h_count 1\n",
			want: "missing _sum",
		},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			if msg := lintErr(t, tc.text); !strings.Contains(msg, tc.want) {
				t.Fatalf("error %q does not mention %q", msg, tc.want)
			}
		})
	}
}
