package telemetry

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds the structured logger behind every CLI's -log-level
// and -log-format flags: levels debug|info|warn|error, formats
// text|json. One constructor keeps the flag grammar identical across
// shrecd, faultstudy, and explore.
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "", "info":
		lv = slog.LevelInfo
	case "debug":
		lv = slog.LevelDebug
	case "warn", "warning":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("telemetry: unknown log level %q (have debug, info, warn, error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("telemetry: unknown log format %q (have text, json)", format)
	}
}

// NopLogger returns a logger that discards everything — the default for
// library embedders that pass no logger.
func NopLogger() *slog.Logger { return slog.New(slog.DiscardHandler) }
