package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// ContentType is the Prometheus text exposition content type.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every family in text exposition format:
// families sorted by name, one HELP/TYPE pair each, series sorted by
// label values, histograms as cumulative _bucket/_sum/_count. The output
// always satisfies Lint — the renderer's tests pin that.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(a, b int) bool { return fams[a].name < fams[b].name })

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		series := f.sorted()
		if len(series) == 0 {
			continue
		}
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range series {
			switch {
			case s.counter != nil:
				writeSample(bw, f.name, f.labels, s.labelValues, "", "", float64(s.counter.Value()))
			case s.counterFn != nil:
				writeSample(bw, f.name, f.labels, s.labelValues, "", "", float64(s.counterFn()))
			case s.gauge != nil:
				writeSample(bw, f.name, f.labels, s.labelValues, "", "", s.gauge.Value())
			case s.gaugeFn != nil:
				writeSample(bw, f.name, f.labels, s.labelValues, "", "", s.gaugeFn())
			case s.hist != nil:
				snap := s.hist.Snapshot()
				for _, b := range snap.Buckets {
					writeSample(bw, f.name+"_bucket", f.labels, s.labelValues, "le", formatLe(b.UpperBound), float64(b.Count))
				}
				writeSample(bw, f.name+"_sum", f.labels, s.labelValues, "", "", snap.Sum)
				writeSample(bw, f.name+"_count", f.labels, s.labelValues, "", "", float64(snap.Count))
			}
		}
	}
	return bw.Flush()
}

// Handler returns an http.Handler serving the registry's exposition.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		_ = r.WritePrometheus(w)
	})
}

// writeSample emits one sample line; extraLabel ("le") is appended after
// the family's own labels.
func writeSample(w io.Writer, name string, labels, values []string, extraLabel, extraValue string, v float64) {
	io.WriteString(w, name)
	if len(labels) > 0 || extraLabel != "" {
		io.WriteString(w, "{")
		first := true
		for i, l := range labels {
			if !first {
				io.WriteString(w, ",")
			}
			first = false
			fmt.Fprintf(w, "%s=%q", l, values[i])
		}
		if extraLabel != "" {
			if !first {
				io.WriteString(w, ",")
			}
			fmt.Fprintf(w, "%s=%q", extraLabel, extraValue)
		}
		io.WriteString(w, "}")
	}
	io.WriteString(w, " ")
	io.WriteString(w, formatValue(v))
	io.WriteString(w, "\n")
}

// formatLe renders a bucket bound ("+Inf" for the catch-all).
func formatLe(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// formatValue renders a sample value.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes backslashes and newlines in HELP text. Label
// values need no helper: Go's %q produces exactly the \\ \" \n escaping
// the exposition format defines.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
