package telemetry

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Span accumulates named phase timings along one logical operation — a
// job, a request, a campaign. Phases are cumulative: recording the same
// phase twice adds to its count and total, so a campaign of 500 trials
// reports one "trial" phase with count 500. All methods are nil-safe
// no-ops, so code paths instrument unconditionally and pay nothing when
// no span is attached.
type Span struct {
	mu     sync.Mutex
	phases map[string]*spanPhase
	order  []*spanPhase
	tee    func(phase string, seconds float64)
}

// spanPhase is one named phase's accumulator. The atomics let concurrent
// trial goroutines record without serializing on the span lock once the
// phase exists.
type spanPhase struct {
	name  string
	count atomic.Uint64
	nanos atomic.Int64
}

// NewSpan builds an empty span.
func NewSpan() *Span {
	return &Span{phases: make(map[string]*spanPhase)}
}

// Tee forwards every Record to fn as well (phase name, duration in
// seconds) — the shrecd server uses it to aggregate per-job phase
// timings into registry histograms. Returns s for chaining.
func (s *Span) Tee(fn func(phase string, seconds float64)) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	s.tee = fn
	s.mu.Unlock()
	return s
}

// Record adds one observation of d to the named phase.
func (s *Span) Record(phase string, d time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	p, ok := s.phases[phase]
	if !ok {
		p = &spanPhase{name: phase}
		s.phases[phase] = p
		s.order = append(s.order, p)
	}
	tee := s.tee
	s.mu.Unlock()
	p.count.Add(1)
	p.nanos.Add(int64(d))
	if tee != nil {
		tee(phase, d.Seconds())
	}
}

// Time starts timing the named phase; the returned stop function records
// the elapsed duration. Usable as `defer span.Time("x")()`.
func (s *Span) Time(phase string) func() {
	if s == nil {
		return func() {}
	}
	start := time.Now()
	return func() { s.Record(phase, time.Since(start)) }
}

// PhaseStat is one phase of a span breakdown, as surfaced in job status
// JSON.
type PhaseStat struct {
	Phase   string  `json:"phase"`
	Count   uint64  `json:"count"`
	Seconds float64 `json:"seconds"`
}

// Breakdown snapshots every phase in first-recorded order. Nil and empty
// spans return nil.
func (s *Span) Breakdown() []PhaseStat {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	order := append([]*spanPhase(nil), s.order...)
	s.mu.Unlock()
	out := make([]PhaseStat, 0, len(order))
	for _, p := range order {
		out = append(out, PhaseStat{
			Phase:   p.name,
			Count:   p.count.Load(),
			Seconds: time.Duration(p.nanos.Load()).Seconds(),
		})
	}
	return out
}

// Context threading: spans and stage observers ride the context through
// the request path (HTTP handler → job goroutine → campaign trials →
// sim.Suite stages → recovery rollbacks), so deeply nested layers
// instrument without new parameters.

type spanKey struct{}
type stageObserverKey struct{}

// WithSpan attaches a span to the context.
func WithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFrom returns the context's span, or nil (whose methods no-op).
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// WithStageObserver attaches a stage-timing observer to the context.
// sim.Suite installs its registry histogram here before running an
// engine, so layers below it (recovery rollbacks) can feed the same
// sim_stage_seconds family without importing the suite.
func WithStageObserver(ctx context.Context, fn func(stage string, seconds float64)) context.Context {
	return context.WithValue(ctx, stageObserverKey{}, fn)
}

// ObserveStage records one stage duration into both the context's stage
// observer (registry histograms) and its span (job phase breakdowns).
func ObserveStage(ctx context.Context, stage string, d time.Duration) {
	if fn, _ := ctx.Value(stageObserverKey{}).(func(string, float64)); fn != nil {
		fn(stage, d.Seconds())
	}
	SpanFrom(ctx).Record(stage, d)
}
