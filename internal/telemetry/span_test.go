package telemetry

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestSpanBreakdown(t *testing.T) {
	s := NewSpan()
	s.Record("fetch", 100*time.Millisecond)
	s.Record("run", 200*time.Millisecond)
	s.Record("fetch", 300*time.Millisecond)
	bd := s.Breakdown()
	if len(bd) != 2 {
		t.Fatalf("breakdown = %d phases, want 2", len(bd))
	}
	// First-recorded order, cumulative counts and totals.
	if bd[0].Phase != "fetch" || bd[0].Count != 2 || bd[0].Seconds < 0.39 || bd[0].Seconds > 0.41 {
		t.Fatalf("fetch stat = %+v", bd[0])
	}
	if bd[1].Phase != "run" || bd[1].Count != 1 {
		t.Fatalf("run stat = %+v", bd[1])
	}
}

func TestSpanNilSafe(t *testing.T) {
	var s *Span
	s.Record("x", time.Second) // must not panic
	s.Time("y")()
	if s.Breakdown() != nil {
		t.Fatal("nil span breakdown not nil")
	}
	if s.Tee(func(string, float64) {}) != nil {
		t.Fatal("nil span Tee not nil")
	}
	if SpanFrom(context.Background()) != nil {
		t.Fatal("empty context has a span")
	}
	// ObserveStage on a bare context is a no-op.
	ObserveStage(context.Background(), "x", time.Second)
}

func TestSpanTee(t *testing.T) {
	var mu sync.Mutex
	got := map[string]float64{}
	s := NewSpan().Tee(func(phase string, sec float64) {
		mu.Lock()
		got[phase] += sec
		mu.Unlock()
	})
	s.Record("a", 250*time.Millisecond)
	s.Record("a", 250*time.Millisecond)
	if v := got["a"]; v < 0.49 || v > 0.51 {
		t.Fatalf("teed total = %g, want ~0.5", v)
	}
}

func TestObserveStageDualWrite(t *testing.T) {
	s := NewSpan()
	var observed string
	ctx := WithSpan(context.Background(), s)
	ctx = WithStageObserver(ctx, func(stage string, sec float64) { observed = stage })
	ObserveStage(ctx, "recovery_rollback", 10*time.Millisecond)
	if observed != "recovery_rollback" {
		t.Fatalf("observer saw %q", observed)
	}
	bd := s.Breakdown()
	if len(bd) != 1 || bd[0].Phase != "recovery_rollback" || bd[0].Count != 1 {
		t.Fatalf("span breakdown = %+v", bd)
	}
}

func TestSpanConcurrent(t *testing.T) {
	s := NewSpan()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				s.Record("trial", time.Millisecond)
			}
		}()
	}
	wg.Wait()
	bd := s.Breakdown()
	if len(bd) != 1 || bd[0].Count != 4000 {
		t.Fatalf("breakdown = %+v, want one phase with count 4000", bd)
	}
}
