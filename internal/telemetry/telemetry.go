// Package telemetry is the dependency-free observability kernel of the
// repro stack: a typed metrics registry (atomic counters, gauges,
// exponential-bucket histograms, and labeled families of all three) with
// a Prometheus text-format renderer, a lightweight span API for
// accumulating named phase timings along a request or job path, an
// exposition-format linter the tests pin the renderer with, structured
// logging construction for the CLIs, and HTTP server middleware
// (per-route counts, in-flight gauge, latency histograms, request IDs).
//
// Everything here is stdlib-only and safe for concurrent use. The hot
// observation paths (Counter.Add, Gauge.Set, Histogram.Observe,
// Span.Record) are allocation-free so instrumentation can ride run
// boundaries without disturbing the engine's zero-alloc guarantees;
// registration and rendering may allocate freely.
package telemetry

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Metric and label names follow the Prometheus exposition charset.
var (
	nameRE  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRE = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// Counter is a monotonically increasing counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down. It stores a float64.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram: observations are counted into
// the first bucket whose upper bound is >= the value, with an implicit
// +Inf bucket catching the rest. Buckets are cumulative only at render
// time, so Observe is a couple of atomic adds.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// BucketCount is one cumulative histogram bucket in a snapshot.
type BucketCount struct {
	UpperBound float64 // +Inf for the last bucket
	Count      uint64  // observations <= UpperBound
}

// HistogramSnapshot is a consistent-enough read of a histogram (buckets
// are read without a global lock, so a snapshot taken mid-observation
// can be off by the in-flight sample — fine for monitoring).
type HistogramSnapshot struct {
	Count   uint64
	Sum     float64
	Buckets []BucketCount // cumulative, ending with +Inf
}

// Snapshot reads the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:   h.count.Load(),
		Sum:     math.Float64frombits(h.sum.Load()),
		Buckets: make([]BucketCount, len(h.counts)),
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		ub := math.Inf(1)
		if i < len(h.bounds) {
			ub = h.bounds[i]
		}
		s.Buckets[i] = BucketCount{UpperBound: ub, Count: cum}
	}
	return s
}

// Quantile estimates the q-quantile (q in [0,1]) by linear interpolation
// within the containing bucket, the same estimate Prometheus's
// histogram_quantile computes. Returns NaN on an empty histogram; a
// quantile landing in the +Inf bucket returns the last finite bound.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	for i, b := range s.Buckets {
		if float64(b.Count) < rank {
			continue
		}
		if math.IsInf(b.UpperBound, 1) {
			if i == 0 {
				return math.NaN()
			}
			return s.Buckets[i-1].UpperBound
		}
		lo, prev := 0.0, uint64(0)
		if i > 0 {
			lo, prev = s.Buckets[i-1].UpperBound, s.Buckets[i-1].Count
		}
		in := b.Count - prev
		if in == 0 {
			return b.UpperBound
		}
		return lo + (b.UpperBound-lo)*(rank-float64(prev))/float64(in)
	}
	return s.Buckets[len(s.Buckets)-1].UpperBound
}

// ExponentialBuckets returns n upper bounds starting at start, each
// factor times the previous — the standard shape for latency
// distributions spanning several orders of magnitude.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic(fmt.Sprintf("telemetry: invalid exponential buckets (start=%g factor=%g n=%d)", start, factor, n))
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// DefTimeBuckets covers 100µs to ~52s doubling — per-stage and
// per-request latencies.
func DefTimeBuckets() []float64 { return ExponentialBuckets(100e-6, 2, 20) }

// WideTimeBuckets covers 1ms to ~1.2h quadrupling — whole-job durations.
func WideTimeBuckets() []float64 { return ExponentialBuckets(1e-3, 4, 12) }

// Metric kinds.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// series is one label combination of a family: exactly one of the value
// fields is set.
type series struct {
	labelValues []string
	counter     *Counter
	gauge       *Gauge
	hist        *Histogram
	counterFn   func() uint64
	gaugeFn     func() float64
}

// family is one named metric with all its label combinations.
type family struct {
	name   string
	help   string
	kind   string
	labels []string
	bounds []float64 // histogram families only

	mu     sync.Mutex
	series map[string]*series
}

// labelKey joins label values into the series map key.
func labelKey(values []string) string { return strings.Join(values, "\x00") }

// with returns (creating if needed) the series for the given values.
func (f *family) with(values []string, make func() *series) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: metric %s expects %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	k := labelKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[k]; ok {
		return s
	}
	s := make()
	s.labelValues = append([]string(nil), values...)
	f.series[k] = s
	return s
}

// sorted returns the family's series sorted by label values for
// deterministic rendering.
func (f *family) sorted() []*series {
	f.mu.Lock()
	out := make([]*series, 0, len(f.series))
	for _, s := range f.series {
		out = append(out, s)
	}
	f.mu.Unlock()
	sort.Slice(out, func(a, b int) bool {
		return labelKey(out[a].labelValues) < labelKey(out[b].labelValues)
	})
	return out
}

// Registry holds metric families and renders them in Prometheus text
// format. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// register returns the family for name, creating it on first use, and
// panics on a respelled re-registration (different kind or labels): that
// is a programming error the first scrape would otherwise render as
// malformed exposition text.
func (r *Registry) register(name, help, kind string, labels []string, bounds []float64) *family {
	if !nameRE.MatchString(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !labelRE.MatchString(l) {
			panic(fmt.Sprintf("telemetry: metric %s: invalid label name %q", name, l))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.kind != kind || !equalStrings(f.labels, labels) {
			panic(fmt.Sprintf("telemetry: metric %s re-registered as %s%v, was %s%v",
				name, kind, labels, f.kind, f.labels))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind,
		labels: append([]string(nil), labels...),
		bounds: append([]float64(nil), bounds...),
		series: make(map[string]*series)}
	r.fams[name] = f
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Counter registers (or returns) the unlabeled counter name.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, kindCounter, nil, nil)
	return f.with(nil, func() *series { return &series{counter: &Counter{}} }).counter
}

// CounterFunc registers a counter whose value is sampled from fn at
// render time — for existing atomics owned by another subsystem.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	f := r.register(name, help, kindCounter, nil, nil)
	f.with(nil, func() *series { return &series{counterFn: fn} })
}

// Gauge registers (or returns) the unlabeled gauge name.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, kindGauge, nil, nil)
	return f.with(nil, func() *series { return &series{gauge: &Gauge{}} }).gauge
}

// GaugeFunc registers a gauge sampled from fn at render time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, kindGauge, nil, nil)
	f.with(nil, func() *series { return &series{gaugeFn: fn} })
}

// Histogram registers (or returns) the unlabeled histogram name with the
// given bucket upper bounds (nil means DefTimeBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefTimeBuckets()
	}
	f := r.register(name, help, kindHistogram, nil, bounds)
	return f.with(nil, func() *series { return &series{hist: newHistogram(f.bounds)} }).hist
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// CounterVec registers (or returns) the counter family name with the
// given label names.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(name, help, kindCounter, labels, nil)}
}

// With returns the counter for the given label values, creating it on
// first use.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.with(values, func() *series { return &series{counter: &Counter{}} }).counter
}

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// GaugeVec registers (or returns) the gauge family name.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, kindGauge, labels, nil)}
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.with(values, func() *series { return &series{gauge: &Gauge{}} }).gauge
}

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ f *family }

// HistogramVec registers (or returns) the histogram family name with the
// given buckets (nil means DefTimeBuckets) and label names.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if bounds == nil {
		bounds = DefTimeBuckets()
	}
	return &HistogramVec{r.register(name, help, kindHistogram, labels, bounds)}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.with(values, func() *series { return &series{hist: newHistogram(v.f.bounds)} }).hist
}

// LabeledHistogram pairs one series' label values with its snapshot.
type LabeledHistogram struct {
	Labels   []string
	Snapshot HistogramSnapshot
}

// Snapshots reads every series of the family, sorted by label values —
// the facade's stage summaries are built from this.
func (v *HistogramVec) Snapshots() []LabeledHistogram {
	var out []LabeledHistogram
	for _, s := range v.f.sorted() {
		out = append(out, LabeledHistogram{Labels: s.labelValues, Snapshot: s.hist.Snapshot()})
	}
	return out
}
