package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_total", "help")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	g := reg.Gauge("test_gauge", "help")
	g.Set(2.5)
	g.Add(-1)
	if g.Value() != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", g.Value())
	}
	// Re-registration with the same shape returns the same metric.
	if reg.Counter("test_total", "help").Value() != 5 {
		t.Fatal("re-registration did not return the existing counter")
	}
}

func TestRegistryPanicsOnConflicts(t *testing.T) {
	for name, fn := range map[string]func(){
		"bad name":       func() { NewRegistry().Counter("0bad", "h") },
		"bad label":      func() { NewRegistry().CounterVec("ok_total", "h", "0bad") },
		"kind conflict":  func() { r := NewRegistry(); r.Counter("x", "h"); r.Gauge("x", "h") },
		"label conflict": func() { r := NewRegistry(); r.CounterVec("x", "h", "a"); r.CounterVec("x", "h", "b") },
		"arity mismatch": func() { NewRegistry().CounterVec("x", "h", "a").With("1", "2") },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			fn()
		})
	}
}

func TestHistogramBucketsAndQuantile(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat_seconds", "help", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if got, want := s.Sum, 56.05; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %g, want %g", got, want)
	}
	wantCum := []uint64{1, 3, 4, 5}
	for i, b := range s.Buckets {
		if b.Count != wantCum[i] {
			t.Fatalf("bucket %d = %d, want %d", i, b.Count, wantCum[i])
		}
	}
	if !math.IsInf(s.Buckets[3].UpperBound, 1) {
		t.Fatal("last bucket is not +Inf")
	}
	// Median falls in the (0.1, 1] bucket; interpolation keeps it there.
	if q := s.Quantile(0.5); q <= 0.1 || q > 1 {
		t.Fatalf("p50 = %g, want in (0.1, 1]", q)
	}
	// A quantile in the +Inf bucket clamps to the last finite bound.
	if q := s.Quantile(0.99); q != 10 {
		t.Fatalf("p99 = %g, want 10", q)
	}
	if !math.IsNaN((HistogramSnapshot{}).Quantile(0.5)) {
		t.Fatal("empty histogram quantile is not NaN")
	}
}

func TestVecLabels(t *testing.T) {
	reg := NewRegistry()
	v := reg.CounterVec("req_total", "help", "route", "code")
	v.With("/a", "2xx").Add(3)
	v.With("/a", "5xx").Inc()
	v.With("/a", "2xx").Inc()
	if got := v.With("/a", "2xx").Value(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	hv := reg.HistogramVec("stage_seconds", "help", []float64{1}, "stage")
	hv.With("run").Observe(0.5)
	hv.With("fetch").Observe(2)
	snaps := hv.Snapshots()
	if len(snaps) != 2 {
		t.Fatalf("snapshots = %d, want 2", len(snaps))
	}
	// Sorted by label value: fetch before run.
	if snaps[0].Labels[0] != "fetch" || snaps[1].Labels[0] != "run" {
		t.Fatalf("snapshot order: %v, %v", snaps[0].Labels, snaps[1].Labels)
	}
}

func TestExponentialBuckets(t *testing.T) {
	b := ExponentialBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("buckets = %v, want %v", b, want)
		}
	}
}

// TestRenderPassesLint pins the renderer against the linter: a registry
// exercising every metric shape (funcs, vecs, histograms, exotic label
// values) must render clean exposition text.
func TestRenderPassesLint(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("plain_total", "plain counter").Add(7)
	reg.CounterFunc("sampled_total", "sampled counter", func() uint64 { return 42 })
	reg.Gauge("plain_gauge", "plain gauge").Set(-1.25)
	reg.GaugeFunc("sampled_gauge", "sampled gauge", func() float64 { return 0.5 })
	v := reg.CounterVec("labeled_total", "labeled counter", "route", "code")
	v.With(`GET /x/{id}`, "2xx").Inc()
	v.With("quote\"and\\slash\nnewline", "5xx").Inc()
	h := reg.HistogramVec("lat_seconds", "latency", DefTimeBuckets(), "stage")
	h.With("run").Observe(0.01)
	h.With("run").Observe(3)
	h.With("fetch").Observe(0.2)
	reg.Histogram("unlabeled_seconds", "unlabeled histogram", []float64{1, 2}).Observe(1.5)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if err := Lint(strings.NewReader(out)); err != nil {
		t.Fatalf("renderer output fails lint:\n%v\n--- output ---\n%s", err, out)
	}
	for _, want := range []string{
		"plain_total 7",
		"sampled_total 42",
		`labeled_total{route="GET /x/{id}",code="2xx"} 1`,
		`lat_seconds_bucket{stage="run",le="+Inf"} 2`,
		`lat_seconds_count{stage="run"} 2`,
		"# TYPE lat_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestConcurrentObservation(t *testing.T) {
	reg := NewRegistry()
	h := reg.HistogramVec("c_seconds", "h", []float64{1}, "stage")
	c := reg.CounterVec("c_total", "h", "k")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.With("s").Observe(0.5)
				c.With("x").Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.With("x").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := h.With("s").Snapshot().Count; got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}
