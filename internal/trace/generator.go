package trace

import (
	"repro/internal/isa"
	"repro/internal/rng"
)

// maxDepDistance bounds register dependency distances. The generator
// rotates destination registers through regRotation architectural names, so
// a producer at distance < regRotation is guaranteed not to have been
// overwritten.
const (
	regRotation    = 112
	regBase        = 8 // registers 0-7 are never written (always-ready)
	maxDepDistance = regRotation - 8
	instrBytes     = 4
	codeBase       = 0x0040_0000 // text segment base
	hotBase        = 0x0800_0000 // hot-region base (stack-like)
	dataBase       = 0x1000_0000 // data segment base
)

// block is one basic block in the synthetic code layout.
type block struct {
	start  uint64 // first instruction PC
	n      int    // instructions including the terminating branch
	kind   isa.BranchKind
	isLoop bool
	// loopIters is the block's fixed trip count (loops exit after
	// loopIters iterations, every visit).
	loopIters int
	bias      float64 // taken probability for plain conditional branches
	target    int     // taken-target block index (loops target themselves)
	// indirect branch targets; index 0 is the favorite.
	indirect []int
}

// Generator emits the deterministic dynamic instruction stream for a
// Profile. It is not safe for concurrent use; create one per simulation.
type Generator struct {
	p      Profile
	r      *rng.RNG
	blocks []block

	cur     int // current block
	off     int // instruction offset within the block
	seq     uint64
	destSeq uint64 // count of register-writing instructions emitted
	phase   int
	phaseN  int // instructions emitted in the current phase

	// loopLeft tracks remaining taken iterations for the current visit to
	// each loop block.
	loopLeft []int

	memPos      uint64 // strided-walk position
	lastLoadSeq uint64
	haveLoad    bool
	// chaseSeq is the dest-sequence of the most recent pointer-chase
	// load. Chased loads link to the previous chain member (a real
	// linked-list traversal), not merely to the previous load — otherwise
	// any interleaved independent load would break the chain and no
	// serialization would occur.
	chaseSeq  uint64
	haveChase bool

	// aluRing tracks the dest-sequence numbers of recent integer ALU
	// instructions. Memory addresses are based on these (induction
	// variables, pointer arithmetic) rather than on arbitrary recent
	// producers — otherwise ~a quarter of addresses would depend on load
	// results, turning every workload into an accidental pointer chase.
	aluRing [8]uint64
	aluN    int

	// wrong-path sub-stream state (forked RNG, separate block walk).
	wp *Generator
}

// New builds a generator for p. It panics if the profile fails validation,
// because profiles are compiled into the binary and a bad one is a bug.
func New(p Profile) *Generator {
	if err := p.Validate(); err != nil {
		panic("trace: " + err.Error())
	}
	r := rng.New(p.Seed)
	g := &Generator{p: p, r: r}
	g.buildBlocks()
	g.loopLeft = make([]int, len(g.blocks))
	wpProfile := p
	wpProfile.Seed = p.Seed ^ 0x9e3779b97f4a7c15
	wp := &Generator{p: wpProfile, r: rng.New(wpProfile.Seed)}
	wp.buildBlocks()
	wp.loopLeft = make([]int, len(wp.blocks))
	g.wp = wp
	return g
}

// buildBlocks lays out the synthetic code: contiguous basic blocks whose
// lengths are geometric around AvgBlockLen, each ending in a branch with a
// fixed behavior.
func (g *Generator) buildBlocks() {
	p := &g.p
	// First pass: lay out block boundaries and kinds until the code
	// footprint is exhausted. Target indices need the final block count,
	// so they are assigned in a second pass.
	limit := uint64(codeBase) + p.CodeFootprint
	pc := uint64(codeBase)
	for pc < limit || len(g.blocks) < 4 {
		n := g.r.Geometric(p.AvgBlockLen, 4*int(p.AvgBlockLen)+8)
		if n < 2 {
			n = 2
		}
		if rem := int((limit - pc) / instrBytes); pc < limit && n > rem && len(g.blocks) >= 4 {
			n = rem
			if n < 2 {
				n = 2
			}
		}
		b := block{start: pc, n: n}
		kindDraw := g.r.Float64()
		switch {
		case kindDraw < p.LoopFrac:
			b.kind = isa.BranchCond
			b.isLoop = true
			b.loopIters = g.r.Geometric(p.LoopMean, 10*int(p.LoopMean)+10)
			if b.loopIters < 2 {
				b.loopIters = 2
			}
		case kindDraw < p.LoopFrac+p.UncondFrac:
			b.kind = isa.BranchUncond
		case kindDraw < p.LoopFrac+p.UncondFrac+p.IndirectFrac:
			b.kind = isa.BranchIndirect
		default:
			b.kind = isa.BranchCond
			if g.r.Bool(p.PredictableFrac) {
				// Strongly biased branch: almost always or almost never
				// taken.
				if g.r.Bool(0.5) {
					b.bias = 0.02 + 0.03*g.r.Float64()
				} else {
					b.bias = 0.95 + 0.03*g.r.Float64()
				}
			} else {
				b.bias = 0.2 + 0.6*g.r.Float64()
			}
		}
		g.blocks = append(g.blocks, b)
		pc += uint64(n) * instrBytes
	}
	// Second pass: assign branch targets now that the block count is
	// known. Targets are biased toward the hot-code prefix per
	// CodeHotFrac, reproducing instruction-cache locality.
	nBlocks := len(g.blocks)
	hotBlocks := nBlocks
	if p.CodeHotFrac > 0 {
		hotBytes := p.CodeHotBytes
		if hotBytes == 0 {
			hotBytes = 32 * 1024
		}
		hotBlocks = 0
		limit := uint64(codeBase) + hotBytes
		for hotBlocks < nBlocks && g.blocks[hotBlocks].start < limit {
			hotBlocks++
		}
		if hotBlocks < 1 {
			hotBlocks = 1
		}
	}
	pickTarget := func() int {
		if p.CodeHotFrac > 0 && g.r.Bool(p.CodeHotFrac) {
			return g.r.Intn(hotBlocks)
		}
		return g.r.Intn(nBlocks)
	}
	for i := range g.blocks {
		b := &g.blocks[i]
		switch {
		case b.isLoop:
			b.target = i // self loop
		case b.kind == isa.BranchIndirect:
			b.indirect = make([]int, p.IndirectTargets)
			for t := range b.indirect {
				b.indirect[t] = pickTarget()
			}
		default:
			b.target = pickTarget()
		}
	}
}

// Seq returns the number of correct-path instructions emitted so far.
func (g *Generator) Seq() uint64 { return g.seq }

// CloneSource returns a generator that continues both the correct-path and
// wrong-path streams from their current positions. The block layout is
// immutable after construction and is shared; all mutable stream state (RNG,
// loop trip counts, block cursor, dependency rings) is copied.
func (g *Generator) CloneSource() Source { return g.clone() }

func (g *Generator) clone() *Generator {
	c := *g
	c.r = g.r.Clone()
	c.loopLeft = append([]int(nil), g.loopLeft...)
	if g.wp != nil {
		c.wp = g.wp.clone()
	}
	return &c
}

// Profile returns the generator's profile.
func (g *Generator) Profile() *Profile { return &g.p }

// curPhase returns the active phase and advances phase bookkeeping by one
// instruction.
func (g *Generator) stepPhase() *Phase {
	ph := &g.p.Phases[g.phase]
	g.phaseN++
	if g.phaseN >= ph.Len {
		g.phaseN = 0
		g.phase = (g.phase + 1) % len(g.p.Phases)
	}
	return ph
}

// rotReg maps a destination-sequence number to its register. Rotating over
// register-writing instructions only makes the "producer not yet
// overwritten" guarantee exact: a source at dest-distance d < regRotation
// always reads the instruction that wrote it d register-writes ago.
func rotReg(destSeq uint64) int8 { return int8(regBase + destSeq%regRotation) }

// srcFor draws a register source at a dependency distance (in register
// writes) behind the current instruction, or RegNone when no producer is in
// range.
func (g *Generator) srcFor(ph *Phase) int8 {
	var dist uint64
	if g.r.Bool(ph.ChainFrac) {
		dist = 1
	} else {
		dist = uint64(g.r.Geometric(ph.DepMean, ph.DepMax))
	}
	if dist > g.destSeq {
		return isa.RegNone
	}
	return rotReg(g.destSeq - dist)
}

// ringSrc draws a source from the ALU spine ring, or RegNone when no spine
// value is within the rotation window (always-ready constant/immediate).
func (g *Generator) ringSrc() int8 {
	if g.aluN > 0 {
		tries := g.aluN
		if tries > len(g.aluRing) {
			tries = len(g.aluRing)
		}
		pick := g.aluRing[g.r.Intn(tries)]
		dist := g.destSeq - pick
		if dist >= 1 && dist < regRotation {
			return rotReg(pick)
		}
	}
	return isa.RegNone
}

// addrSrc draws the register source for an address computation: a recent
// spine result still within the rotation window, falling back to the
// general dependency draw.
func (g *Generator) addrSrc(ph *Phase) int8 {
	if s := g.ringSrc(); s != isa.RegNone {
		return s
	}
	return g.srcFor(ph)
}

// chaseAddr draws the address of a pointer-chase link: within the hot
// region (cheap, cache-resident traversal) unless ChaseColdFrac sends it
// into the cold footprint, or no hot region exists.
func (g *Generator) chaseAddr(ph *Phase) uint64 {
	if ph.HotFrac > 0 && !g.r.Bool(ph.ChaseColdFrac) {
		hot := ph.HotBytes
		if hot == 0 {
			hot = 32 * 1024
		}
		return hotBase + uint64(g.r.Intn(int(hot)))&^7
	}
	fp := ph.DataFootprint
	return dataBase + uint64(g.r.Intn(int(fp)))&^7
}

// dataAddr draws a memory address from the phase's address model: a hot
// region (stack, hot structures) with probability HotFrac, otherwise the
// strided/random mixture over the full footprint. The hot region lives
// below the footprint so cold sweeps do not alias it.
func (g *Generator) dataAddr(ph *Phase) uint64 {
	if ph.HotFrac > 0 && g.r.Bool(ph.HotFrac) {
		hot := ph.HotBytes
		if hot == 0 {
			hot = 32 * 1024
		}
		return hotBase + uint64(g.r.Intn(int(hot)))&^7
	}
	fp := ph.DataFootprint
	if g.r.Bool(ph.StrideFrac) {
		stride := ph.StrideBytes
		if stride == 0 {
			stride = 8
		}
		g.memPos = (g.memPos + stride) % fp
		return dataBase + g.memPos
	}
	return dataBase + uint64(g.r.Intn(int(fp)))&^7
}

// Next emits the next correct-path instruction.
func (g *Generator) Next() isa.Inst {
	b := &g.blocks[g.cur]
	pc := b.start + uint64(g.off)*instrBytes
	var in isa.Inst
	if g.off == b.n-1 {
		var next int
		in, next = g.branchInst(b, pc)
		g.cur, g.off = next, 0
	} else {
		ph := g.stepPhase()
		in = g.bodyInst(ph, pc)
		g.off++
	}
	g.seq++
	return in
}

// bodyInst synthesizes one non-branch instruction.
func (g *Generator) bodyInst(ph *Phase, pc uint64) isa.Inst {
	cls := isa.OpClass(g.r.Pick(ph.Mix[:]))
	in := isa.Inst{PC: pc, Class: cls, Dest: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone}
	switch {
	case cls == isa.OpLoad:
		if g.r.Bool(ph.PointerChaseFrac) {
			// Chain member: the address depends on the previous chain
			// member's result (falling back to the last load, then the
			// spine, when the chain head left the rotation window).
			src := isa.RegNone
			if g.haveChase && g.destSeq-g.chaseSeq < regRotation {
				src = rotReg(g.chaseSeq)
			} else if g.haveLoad && g.destSeq-g.lastLoadSeq < regRotation {
				src = rotReg(g.lastLoadSeq)
			}
			if src == isa.RegNone {
				src = g.addrSrc(ph)
			}
			in.Src1 = src
			g.chaseSeq = g.destSeq
			g.haveChase = true
			in.Addr = g.chaseAddr(ph)
		} else {
			in.Src1 = g.addrSrc(ph)
			in.Addr = g.dataAddr(ph)
		}
		in.Dest = rotReg(g.destSeq)
		g.lastLoadSeq = g.destSeq
		g.haveLoad = true
		g.destSeq++
	case cls == isa.OpStore:
		in.Src1 = g.addrSrc(ph) // address base
		in.Src2 = g.srcFor(ph)  // data
		in.Addr = g.dataAddr(ph)
	case cls == isa.OpIALU:
		// A fraction of integer ALU work is induction variables and
		// pointer arithmetic: a spine that consumes only other spine
		// results and therefore runs ahead of outstanding misses. Spine
		// membership is all-or-nothing — one source drawn from a load or
		// FP result would stall the spine (and every address computed
		// from it) behind the most recent cache miss, eliminating all
		// memory-level parallelism. The remaining ALU ops are consumers
		// (comparisons, reductions) that read anything but never enter
		// the ring that addresses are drawn from.
		if g.r.Bool(aluSpineFrac) {
			in.Src1 = g.ringSrc()
			if g.r.Bool(ph.SrcTwoProb) {
				in.Src2 = g.ringSrc()
			}
			in.Dest = rotReg(g.destSeq)
			g.aluRing[g.aluN%len(g.aluRing)] = g.destSeq
			g.aluN++
		} else {
			in.Src1 = g.srcFor(ph)
			if g.r.Bool(ph.SrcTwoProb) {
				in.Src2 = g.srcFor(ph)
			}
			in.Dest = rotReg(g.destSeq)
		}
		g.destSeq++
	default:
		in.Src1 = g.srcFor(ph)
		if g.r.Bool(ph.SrcTwoProb) {
			in.Src2 = g.srcFor(ph)
		}
		in.Dest = rotReg(g.destSeq)
		g.destSeq++
	}
	return in
}

// aluSpineFrac is the fraction of integer ALU instructions that belong to
// the pure address spine (induction variables, pointer arithmetic).
const aluSpineFrac = 0.6

// branchInst synthesizes a block's terminating branch, resolves its actual
// outcome, and returns the successor block index.
func (g *Generator) branchInst(b *block, pc uint64) (isa.Inst, int) {
	ph := g.stepPhase()
	in := isa.Inst{
		PC: pc, Class: isa.OpBranch, BranchKind: b.kind,
		Dest: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone,
	}
	fallIdx := (g.cur + 1) % len(g.blocks)
	next := fallIdx
	switch b.kind {
	case isa.BranchCond:
		// Loop conditions resolve from the quickly-available spine; other
		// conditions split between spine and arbitrary data per profile.
		if b.isLoop || g.r.Bool(ph.BranchSpineFrac) {
			in.Src1 = g.ringSrc()
		} else {
			in.Src1 = g.srcFor(ph)
		}
		if b.isLoop {
			if g.loopLeft[g.cur] == 0 {
				// Fresh entry: arm the block's fixed trip count.
				g.loopLeft[g.cur] = b.loopIters
			}
			g.loopLeft[g.cur]--
			in.Taken = g.loopLeft[g.cur] > 0
		} else {
			in.Taken = g.r.Bool(b.bias)
		}
		if in.Taken {
			next = b.target
		}
	case isa.BranchUncond:
		in.Taken = true
		next = b.target
	case isa.BranchIndirect:
		in.Src1 = g.srcFor(ph)
		in.Taken = true
		ti := 0
		if !g.r.Bool(0.7) && len(b.indirect) > 1 {
			ti = 1 + g.r.Intn(len(b.indirect)-1)
		}
		next = b.indirect[ti]
	}
	if in.Taken {
		in.Target = g.blocks[next].start
	} else {
		in.Target = g.blocks[fallIdx].start
	}
	return in, next
}

// NextWrongPath emits one instruction from the wrong-path side stream.
// Wrong-path instructions consume pipeline resources but never retire; the
// side stream is deterministic and independent of the correct path, so the
// correct-path trace is identical across machine configurations.
func (g *Generator) NextWrongPath() isa.Inst {
	in := g.wp.Next()
	return in
}
