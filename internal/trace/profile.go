// Package trace synthesizes deterministic dynamic instruction streams that
// stand in for the paper's SPEC2K SimPoint traces.
//
// The paper's conclusions are about resource behavior — issue and
// functional unit utilization, out-of-order window occupancy, branch
// misprediction rates, and cache miss patterns — not about program
// semantics. Each workload is therefore described by a Profile: a
// statistical model of a program with a fixed code layout (basic blocks
// with per-branch behaviors), an instruction mix, a dependency-distance
// distribution that sets the available ILP, and data address streams that
// set the cache behavior. Given the same Profile, the generator emits a
// bit-identical instruction stream on every run, so different machine
// configurations simulate exactly the same "program".
package trace

import (
	"fmt"

	"repro/internal/isa"
)

// Class labels a profile as an integer or floating-point benchmark, which
// the paper aggregates separately.
type Class uint8

const (
	// IntClass marks SPECint-like profiles.
	IntClass Class = iota
	// FPClass marks SPECfp-like profiles.
	FPClass
)

// String returns "int" or "fp".
func (c Class) String() string {
	if c == IntClass {
		return "int"
	}
	return "fp"
}

// Phase is one statistical regime of a program. Programs with a single
// phase are homogeneous; multi-phase profiles alternate regimes to model
// the IPC fluctuation the paper identifies as a SHREC opportunity.
type Phase struct {
	// Len is the number of dynamic instructions per repetition of this
	// phase.
	Len int
	// Mix weights non-branch instruction classes (branch weight must be
	// zero; branches come from block terminators).
	Mix [isa.NumOpClasses]float64
	// DepMean is the mean register dependency distance in dynamic
	// instructions; larger means more ILP. DepMax caps the distance (it
	// must stay below the generator's register rotation of 48).
	DepMean float64
	DepMax  int
	// ChainFrac is the probability that an instruction reads the
	// immediately preceding result, creating serial chains.
	ChainFrac float64
	// SrcTwoProb is the probability of a second register source.
	SrcTwoProb float64
	// DataFootprint is the data working set in bytes; addresses fall
	// inside it. Footprints beyond the 2MB L2 produce memory-bound
	// behavior.
	DataFootprint uint64
	// StrideFrac is the fraction of memory accesses that walk the
	// footprint sequentially (with StrideBytes spacing); the rest are
	// uniform random within the footprint.
	StrideFrac float64
	// StrideBytes is the stride of the sequential walk (default 8).
	StrideBytes uint64
	// PointerChaseFrac is the probability that a load is a member of a
	// pointer-chase chain: its address depends on the previous chain
	// member's result, serializing memory accesses (parser/twolf-like
	// behavior).
	PointerChaseFrac float64
	// ChaseColdFrac is the probability that a chase link dereferences
	// into the cold footprint (sparse-matrix indirection, equake-like)
	// rather than the hot region. Cold links serialize at memory latency
	// and are dramatically more expensive.
	ChaseColdFrac float64
	// HotFrac is the fraction of memory accesses that hit a small hot
	// region of HotBytes (stack frames, hot structures); the remainder
	// follows the strided/random model over the full footprint. This is
	// the locality knob that sets realistic L1 miss rates.
	HotFrac float64
	// HotBytes is the hot region size (default 32KB when HotFrac > 0).
	HotBytes uint64
	// BranchSpineFrac is the probability that a conditional branch's
	// operand comes from the quickly-available ALU spine (loop counters)
	// rather than from arbitrary data; spine-resolved branches have short
	// misprediction penalties, data-dependent ones resolve late.
	BranchSpineFrac float64
}

// Profile describes one synthetic benchmark.
type Profile struct {
	// Name is the benchmark name (for example "swim").
	Name string
	// Class is IntClass or FPClass.
	Class Class
	// HighIPC marks membership in the paper's high-IPC subset.
	HighIPC bool
	// Seed selects the deterministic stream.
	Seed uint64

	// CodeFootprint is the static code size in bytes; it determines L1I
	// behavior. The code is laid out as contiguous basic blocks.
	CodeFootprint uint64
	// CodeHotFrac is the probability that a branch target falls in the
	// hot-code region (the first CodeHotBytes of the layout), modeling
	// the 90/10 locality of real programs. Zero means uniform targets,
	// which thrashes the L1I for large code footprints.
	CodeHotFrac float64
	// CodeHotBytes is the hot-code region size (default 32KB when
	// CodeHotFrac > 0).
	CodeHotBytes uint64
	// AvgBlockLen is the mean basic block length in instructions
	// (the dynamic branch fraction is roughly 1/AvgBlockLen).
	AvgBlockLen float64
	// LoopFrac, UncondFrac, IndirectFrac partition block-terminating
	// branches: LoopFrac are backward self-loops (taken loopMean-1 times
	// per entry), UncondFrac are unconditional jumps, IndirectFrac are
	// indirect jumps with IndirectTargets possible targets; the rest are
	// conditional branches with per-branch bias.
	LoopFrac, UncondFrac, IndirectFrac float64
	// LoopMean is the mean iteration count of loop branches. Each loop
	// block gets a fixed trip count drawn around this mean at build time,
	// so loop exits are periodic: short loops are fully predictable via
	// local history, long ones mispredict roughly once per exit.
	LoopMean float64
	// PredictableFrac is the fraction of conditional branches with an
	// extreme (easily predicted) bias; the rest draw a bias uniformly
	// from [0.2, 0.8] and mispredict often.
	PredictableFrac float64
	// IndirectTargets is the number of distinct targets per indirect
	// branch (the favorite is chosen 70% of the time).
	IndirectTargets int

	// Phases holds at least one phase, cycled in order.
	Phases []Phase
}

// Validate reports configuration errors that would make generation
// ill-defined.
func (p *Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("profile without name")
	}
	if p.CodeFootprint < 4096 {
		return fmt.Errorf("%s: code footprint %d too small", p.Name, p.CodeFootprint)
	}
	if p.AvgBlockLen < 2 {
		return fmt.Errorf("%s: average block length %v too small", p.Name, p.AvgBlockLen)
	}
	if f := p.LoopFrac + p.UncondFrac + p.IndirectFrac; f > 1 {
		return fmt.Errorf("%s: branch kind fractions sum to %v > 1", p.Name, f)
	}
	if p.IndirectFrac > 0 && p.IndirectTargets < 1 {
		return fmt.Errorf("%s: indirect branches need IndirectTargets >= 1", p.Name)
	}
	if len(p.Phases) == 0 {
		return fmt.Errorf("%s: no phases", p.Name)
	}
	for i := range p.Phases {
		ph := &p.Phases[i]
		if ph.Len <= 0 {
			return fmt.Errorf("%s phase %d: non-positive length", p.Name, i)
		}
		if ph.Mix[isa.OpBranch] != 0 {
			return fmt.Errorf("%s phase %d: branch weight must be zero (branches come from blocks)", p.Name, i)
		}
		var total float64
		for _, w := range ph.Mix {
			if w < 0 {
				return fmt.Errorf("%s phase %d: negative mix weight", p.Name, i)
			}
			total += w
		}
		if total <= 0 {
			return fmt.Errorf("%s phase %d: empty mix", p.Name, i)
		}
		if ph.DepMax <= 0 || ph.DepMax > maxDepDistance {
			return fmt.Errorf("%s phase %d: DepMax %d out of (0, %d]", p.Name, i, ph.DepMax, maxDepDistance)
		}
		if ph.DepMean < 1 {
			return fmt.Errorf("%s phase %d: DepMean %v < 1", p.Name, i, ph.DepMean)
		}
		if ph.DataFootprint < 64 {
			return fmt.Errorf("%s phase %d: data footprint too small", p.Name, i)
		}
		if ph.HotFrac < 0 || ph.HotFrac > 1 {
			return fmt.Errorf("%s phase %d: HotFrac %v out of [0,1]", p.Name, i, ph.HotFrac)
		}
		if ph.BranchSpineFrac < 0 || ph.BranchSpineFrac > 1 {
			return fmt.Errorf("%s phase %d: BranchSpineFrac %v out of [0,1]", p.Name, i, ph.BranchSpineFrac)
		}
	}
	return nil
}

// BranchFraction returns the approximate dynamic branch fraction implied by
// the block structure.
func (p *Profile) BranchFraction() float64 { return 1 / p.AvgBlockLen }
