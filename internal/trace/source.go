package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/isa"
)

// Source supplies the two instruction streams the pipeline consumes: the
// committed (correct-path) stream and the synthetic wrong-path stream
// fetched past mispredicted branches. Generator is the synthetic
// implementation; Recording replays captured traces.
type Source interface {
	// Next returns the next correct-path instruction.
	Next() isa.Inst
	// NextWrongPath returns the next wrong-path instruction.
	NextWrongPath() isa.Inst
}

// CloneSource is implemented by sources whose stream position can be
// snapshotted. Engine checkpoints require it: a checkpointed simulation
// resumes by continuing the clone exactly where the original stood.
type CloneSource interface {
	Source
	// CloneSource returns an independent source that continues this
	// source's streams from their current positions.
	CloneSource() Source
}

// Recording is a finite captured trace replayed as an infinite stream:
// when the end is reached, replay wraps to the beginning (introducing one
// control-flow discontinuity per lap, which the timing model tolerates —
// it simply looks like one more indirect jump).
type Recording struct {
	insts []isa.Inst
	wrong []isa.Inst
	pos   int
	wpos  int
}

// Capture records n correct-path and nWrong wrong-path instructions from
// src. n must be positive; nWrong may be zero only if the replay will run
// on a machine without branch prediction misses (in practice pass a few
// thousand).
func Capture(src Source, n, nWrong int) (*Recording, error) {
	if n <= 0 {
		return nil, fmt.Errorf("trace: capture length %d must be positive", n)
	}
	r := &Recording{
		insts: make([]isa.Inst, n),
		wrong: make([]isa.Inst, nWrong),
	}
	for i := range r.insts {
		r.insts[i] = src.Next()
	}
	for i := range r.wrong {
		r.wrong[i] = src.NextWrongPath()
	}
	return r, nil
}

// Len returns the number of captured correct-path instructions.
func (r *Recording) Len() int { return len(r.insts) }

// WrongLen returns the number of captured wrong-path instructions.
func (r *Recording) WrongLen() int { return len(r.wrong) }

// Next implements Source by cyclic replay.
func (r *Recording) Next() isa.Inst {
	in := r.insts[r.pos]
	r.pos++
	if r.pos == len(r.insts) {
		r.pos = 0
	}
	return in
}

// NextWrongPath implements Source by cyclic replay of the wrong-path
// stream. With no captured wrong path it falls back to a harmless NOP-like
// ALU instruction so replay cannot crash mid-run.
func (r *Recording) NextWrongPath() isa.Inst {
	if len(r.wrong) == 0 {
		return isa.Inst{Class: isa.OpIALU, Dest: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone}
	}
	in := r.wrong[r.wpos]
	r.wpos++
	if r.wpos == len(r.wrong) {
		r.wpos = 0
	}
	return in
}

// Reset rewinds replay to the beginning of both streams.
func (r *Recording) Reset() { r.pos, r.wpos = 0, 0 }

// CloneSource returns a replay that continues from the current positions.
// The captured instruction slices are immutable and shared.
func (r *Recording) CloneSource() Source {
	c := *r
	return &c
}

// Trace file format: a fixed header followed by fixed-width records.
//
//	magic   [8]byte  "SHRECTR1"
//	n       uint32   correct-path record count
//	nWrong  uint32   wrong-path record count
//	records (n + nWrong) x 29 bytes, little endian:
//	  PC uint64 | Addr uint64 | Target uint64 |
//	  Class uint8 | Dest int8 | Src1 int8 | Src2 int8 |
//	  flags uint8 (bit 0: taken; bits 1-2: branch kind)
const traceMagic = "SHRECTR1"

func putRecord(buf []byte, in isa.Inst) {
	binary.LittleEndian.PutUint64(buf[0:], in.PC)
	binary.LittleEndian.PutUint64(buf[8:], in.Addr)
	binary.LittleEndian.PutUint64(buf[16:], in.Target)
	buf[24] = uint8(in.Class)
	buf[25] = uint8(in.Dest)
	buf[26] = uint8(in.Src1)
	buf[27] = uint8(in.Src2)
	var flags uint8
	if in.Taken {
		flags |= 1
	}
	flags |= uint8(in.BranchKind) << 1
	buf[28] = flags
}

func getRecord(buf []byte) isa.Inst {
	var in isa.Inst
	in.PC = binary.LittleEndian.Uint64(buf[0:])
	in.Addr = binary.LittleEndian.Uint64(buf[8:])
	in.Target = binary.LittleEndian.Uint64(buf[16:])
	in.Class = isa.OpClass(buf[24])
	in.Dest = int8(buf[25])
	in.Src1 = int8(buf[26])
	in.Src2 = int8(buf[27])
	in.Taken = buf[28]&1 != 0
	in.BranchKind = isa.BranchKind(buf[28] >> 1)
	return in
}

// fullRecordBytes is the on-disk record width (see format comment).
const fullRecordBytes = 29

// WriteTo serializes the recording. It returns the byte count written.
func (r *Recording) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var total int64
	n, err := bw.WriteString(traceMagic)
	total += int64(n)
	if err != nil {
		return total, err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(r.insts)))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(r.wrong)))
	n, err = bw.Write(hdr[:])
	total += int64(n)
	if err != nil {
		return total, err
	}
	var rec [fullRecordBytes]byte
	for _, stream := range [][]isa.Inst{r.insts, r.wrong} {
		for _, in := range stream {
			putRecord(rec[:], in)
			n, err = bw.Write(rec[:])
			total += int64(n)
			if err != nil {
				return total, err
			}
		}
	}
	return total, bw.Flush()
}

// ReadRecording deserializes a trace written by WriteTo, validating every
// record.
func ReadRecording(rd io.Reader) (*Recording, error) {
	br := bufio.NewReader(rd)
	magic := make([]byte, len(traceMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != traceMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	n := binary.LittleEndian.Uint32(hdr[0:])
	nWrong := binary.LittleEndian.Uint32(hdr[4:])
	const sanity = 1 << 30
	if n == 0 || n > sanity || nWrong > sanity {
		return nil, fmt.Errorf("trace: implausible record counts %d/%d", n, nWrong)
	}
	r := &Recording{
		insts: make([]isa.Inst, n),
		wrong: make([]isa.Inst, nWrong),
	}
	var rec [fullRecordBytes]byte
	for _, stream := range [][]isa.Inst{r.insts, r.wrong} {
		for i := range stream {
			if _, err := io.ReadFull(br, rec[:]); err != nil {
				return nil, fmt.Errorf("trace: reading record: %w", err)
			}
			in := getRecord(rec[:])
			if err := in.Validate(); err != nil {
				return nil, fmt.Errorf("trace: record %d: %w", i, err)
			}
			stream[i] = in
		}
	}
	return r, nil
}
