package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/isa"
)

func TestCaptureAndReplay(t *testing.T) {
	g := New(testProfile())
	rec, err := Capture(g, 5000, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Len() != 5000 || rec.WrongLen() != 1000 {
		t.Fatalf("lengths = %d/%d", rec.Len(), rec.WrongLen())
	}
	// Replay must reproduce the captured stream exactly.
	ref := New(testProfile())
	for i := 0; i < 5000; i++ {
		if got, want := rec.Next(), ref.Next(); got != want {
			t.Fatalf("replay diverged at %d", i)
		}
	}
	// Wrap-around: the 5001st instruction is the first again.
	first := New(testProfile()).Next()
	if got := rec.Next(); got != first {
		t.Fatalf("wrap-around broken: %v vs %v", got, first)
	}
}

func TestCaptureRejectsEmpty(t *testing.T) {
	if _, err := Capture(New(testProfile()), 0, 0); err == nil {
		t.Fatal("empty capture accepted")
	}
}

func TestRecordingReset(t *testing.T) {
	rec, _ := Capture(New(testProfile()), 100, 10)
	a := rec.Next()
	rec.Next()
	rec.Reset()
	if got := rec.Next(); got != a {
		t.Fatal("Reset did not rewind")
	}
}

func TestRecordingNoWrongPathFallback(t *testing.T) {
	rec, _ := Capture(New(testProfile()), 10, 0)
	in := rec.NextWrongPath()
	if err := in.Validate(); err != nil {
		t.Fatalf("fallback instruction invalid: %v", err)
	}
	if in.Class.IsMem() || in.IsBranch() {
		t.Fatal("fallback must be a plain ALU op")
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	rec, err := Capture(New(testProfile()), 3000, 500)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := rec.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	wantBytes := int64(len(traceMagic) + 8 + (3000+500)*fullRecordBytes)
	if n != wantBytes || int64(buf.Len()) != wantBytes {
		t.Fatalf("wrote %d bytes, want %d", n, wantBytes)
	}

	got, err := ReadRecording(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != rec.Len() || got.WrongLen() != rec.WrongLen() {
		t.Fatal("lengths changed in round trip")
	}
	for i := 0; i < rec.Len(); i++ {
		a, b := rec.Next(), got.Next()
		if a != b {
			t.Fatalf("record %d changed in round trip:\n%v\n%v", i, a, b)
		}
	}
	for i := 0; i < rec.WrongLen(); i++ {
		if rec.NextWrongPath() != got.NextWrongPath() {
			t.Fatalf("wrong-path record %d changed in round trip", i)
		}
	}
}

func TestRecordFieldFidelity(t *testing.T) {
	// Every field, including branch metadata, must survive the 29-byte
	// record encoding.
	cases := []isa.Inst{
		{PC: 0xdeadbeef0, Class: isa.OpFDiv, Dest: 100, Src1: 7, Src2: isa.RegNone},
		{PC: 0x400000, Class: isa.OpLoad, Dest: 12, Src1: 13, Src2: isa.RegNone, Addr: 0x12345678},
		{PC: 0x400004, Class: isa.OpBranch, BranchKind: isa.BranchIndirect,
			Dest: isa.RegNone, Src1: 3, Src2: isa.RegNone, Taken: true, Target: 0x500000},
		{PC: 0x400008, Class: isa.OpBranch, BranchKind: isa.BranchCond,
			Dest: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone, Taken: false, Target: 0x40000c},
	}
	var buf [fullRecordBytes]byte
	for i, in := range cases {
		putRecord(buf[:], in)
		if got := getRecord(buf[:]); got != in {
			t.Errorf("case %d: %+v -> %+v", i, in, got)
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := ReadRecording(strings.NewReader("not a trace file at all")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadRecording(strings.NewReader("SHRECTR1")); err == nil {
		t.Fatal("truncated header accepted")
	}
	// Valid header, truncated body.
	rec, _ := Capture(New(testProfile()), 100, 0)
	var buf bytes.Buffer
	if _, err := rec.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-5]
	if _, err := ReadRecording(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated body accepted")
	}
}
