package trace

import (
	"math"
	"testing"

	"repro/internal/isa"
)

// testProfile returns a small, valid profile for generator tests.
func testProfile() Profile {
	var mix [isa.NumOpClasses]float64
	mix[isa.OpIALU] = 0.55
	mix[isa.OpLoad] = 0.25
	mix[isa.OpStore] = 0.12
	mix[isa.OpIMul] = 0.05
	mix[isa.OpIDiv] = 0.03
	return Profile{
		Name:            "test",
		Class:           IntClass,
		Seed:            12345,
		CodeFootprint:   32 * 1024,
		AvgBlockLen:     6,
		LoopFrac:        0.2,
		UncondFrac:      0.1,
		IndirectFrac:    0.05,
		LoopMean:        10,
		PredictableFrac: 0.8,
		IndirectTargets: 4,
		Phases: []Phase{{
			Len:           100000,
			Mix:           mix,
			DepMean:       6,
			DepMax:        32,
			ChainFrac:     0.25,
			SrcTwoProb:    0.4,
			DataFootprint: 256 * 1024,
			StrideFrac:    0.6,
			StrideBytes:   8,
		}},
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a, b := New(testProfile()), New(testProfile())
	for i := 0; i < 20000; i++ {
		ia, ib := a.Next(), b.Next()
		if ia != ib {
			t.Fatalf("streams diverged at %d:\n%v\n%v", i, &ia, &ib)
		}
	}
}

func TestGeneratorValidInstructions(t *testing.T) {
	g := New(testProfile())
	for i := 0; i < 50000; i++ {
		in := g.Next()
		if err := in.Validate(); err != nil {
			t.Fatalf("instruction %d invalid: %v (%v)", i, err, in)
		}
	}
}

func TestBranchFractionMatchesBlocks(t *testing.T) {
	p := testProfile()
	g := New(p)
	branches := 0
	const n = 200000
	for i := 0; i < n; i++ {
		if g.Next().IsBranch() {
			branches++
		}
	}
	got := float64(branches) / n
	want := p.BranchFraction()
	// Loops revisit short blocks, so allow a wide band.
	if got < want*0.5 || got > want*2 {
		t.Fatalf("branch fraction = %.3f, profile implies ~%.3f", got, want)
	}
}

func TestMixRoughlyRespected(t *testing.T) {
	p := testProfile()
	g := New(p)
	var counts [isa.NumOpClasses]int
	nonBranch := 0
	const n = 300000
	for i := 0; i < n; i++ {
		in := g.Next()
		if !in.IsBranch() {
			counts[in.Class]++
			nonBranch++
		}
	}
	mix := p.Phases[0].Mix
	var total float64
	for _, w := range mix {
		total += w
	}
	for cls, w := range mix {
		if w == 0 {
			continue
		}
		want := w / total
		got := float64(counts[cls]) / float64(nonBranch)
		if math.Abs(got-want) > 0.02 {
			t.Errorf("class %v fraction = %.3f, want ~%.3f", isa.OpClass(cls), got, want)
		}
	}
}

func TestPCsWithinCodeFootprint(t *testing.T) {
	p := testProfile()
	g := New(p)
	lo, hi := uint64(codeBase), uint64(codeBase)+p.CodeFootprint+uint64(4*p.AvgBlockLen*instrBytes)
	for i := 0; i < 100000; i++ {
		in := g.Next()
		if in.PC < lo || in.PC > hi {
			t.Fatalf("PC %#x outside code footprint [%#x, %#x]", in.PC, lo, hi)
		}
	}
}

func TestAddressesWithinDataFootprint(t *testing.T) {
	p := testProfile()
	g := New(p)
	fp := p.Phases[0].DataFootprint
	for i := 0; i < 100000; i++ {
		in := g.Next()
		if in.Class.IsMem() {
			if in.Addr < dataBase || in.Addr >= dataBase+fp {
				t.Fatalf("address %#x outside data footprint", in.Addr)
			}
		}
	}
}

func TestBranchTargetsAreBlockStarts(t *testing.T) {
	p := testProfile()
	g := New(p)
	starts := map[uint64]bool{}
	for i := range g.blocks {
		starts[g.blocks[i].start] = true
	}
	for i := 0; i < 100000; i++ {
		in := g.Next()
		if in.IsBranch() && !starts[in.Target] {
			t.Fatalf("branch target %#x is not a block start", in.Target)
		}
	}
}

// The walk must actually follow taken branches: after a taken branch, the
// next instruction's PC equals the branch target.
func TestControlFlowContinuity(t *testing.T) {
	g := New(testProfile())
	prev := g.Next()
	for i := 0; i < 100000; i++ {
		cur := g.Next()
		if prev.IsBranch() {
			if prev.Taken && cur.PC != prev.Target {
				t.Fatalf("after taken branch to %#x, next PC = %#x", prev.Target, cur.PC)
			}
			if !prev.Taken && cur.PC != prev.Target {
				// Target holds the fall-through for not-taken branches.
				t.Fatalf("after not-taken branch, next PC = %#x, want fall-through %#x", cur.PC, prev.Target)
			}
		} else if cur.PC != prev.PC+instrBytes {
			t.Fatalf("sequential PC break: %#x -> %#x", prev.PC, cur.PC)
		}
		prev = cur
	}
}

// Dependency sources must reference reasonably recent producers. Because
// stores and branches do not write their rotation slot, the effective
// distance to the last writer can exceed one rotation, but it must stay
// bounded (a handful of rotations) or the ILP model would be meaningless.
func TestDependencyDistancesInRange(t *testing.T) {
	g := New(testProfile())
	written := map[int8]uint64{} // reg -> last writer seq
	for i := uint64(0); i < 100000; i++ {
		in := g.Next()
		for _, src := range []int8{in.Src1, in.Src2} {
			if src == isa.RegNone {
				continue
			}
			if w, ok := written[src]; ok {
				dist := i - w
				if dist > 4*regRotation {
					t.Fatalf("instr %d reads r%d written %d instructions ago (> %d)",
						i, src, dist, 4*regRotation)
				}
			}
		}
		if in.Dest != isa.RegNone {
			written[in.Dest] = i
		}
	}
}

func TestWrongPathStreamIndependent(t *testing.T) {
	// Consuming wrong-path instructions must not perturb the correct path.
	a, b := New(testProfile()), New(testProfile())
	for i := 0; i < 5000; i++ {
		ia := a.Next()
		if i%3 == 0 {
			for k := 0; k < 5; k++ {
				wp := a.NextWrongPath()
				if err := wp.Validate(); err != nil {
					t.Fatalf("wrong-path instruction invalid: %v", err)
				}
			}
		}
		ib := b.Next()
		if ia != ib {
			t.Fatalf("wrong-path consumption perturbed correct path at %d", i)
		}
	}
}

func TestLoopBranchesLoop(t *testing.T) {
	p := testProfile()
	p.LoopFrac = 1 // all blocks self-loop
	p.UncondFrac, p.IndirectFrac = 0, 0
	g := New(p)
	selfLoops := 0
	for i := 0; i < 10000; i++ {
		in := g.Next()
		if in.IsBranch() && in.Taken && in.Target <= in.PC {
			selfLoops++
		}
	}
	if selfLoops == 0 {
		t.Fatal("no backward taken branches in an all-loop profile")
	}
}

func TestPhaseAlternation(t *testing.T) {
	p := testProfile()
	// Phase B is FP-heavy; phase A has no FP at all.
	var fpMix [isa.NumOpClasses]float64
	fpMix[isa.OpFAdd] = 0.5
	fpMix[isa.OpFMul] = 0.3
	fpMix[isa.OpLoad] = 0.2
	p.Phases = []Phase{
		p.Phases[0],
		{Len: 100000, Mix: fpMix, DepMean: 8, DepMax: 32, SrcTwoProb: 0.5,
			DataFootprint: 64 * 1024, StrideFrac: 0.9, StrideBytes: 8},
	}
	p.Phases[0].Len = 100000
	g := New(p)
	sawFP, sawInt := false, false
	for i := 0; i < 250000; i++ {
		in := g.Next()
		if in.Class.IsFP() {
			sawFP = true
		}
		if in.Class == isa.OpIALU {
			sawInt = true
		}
	}
	if !sawFP || !sawInt {
		t.Fatalf("phases not alternating: fp=%v int=%v", sawFP, sawInt)
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	base := testProfile()
	mutations := []func(*Profile){
		func(p *Profile) { p.Name = "" },
		func(p *Profile) { p.CodeFootprint = 100 },
		func(p *Profile) { p.AvgBlockLen = 1 },
		func(p *Profile) { p.LoopFrac = 0.9; p.UncondFrac = 0.9 },
		func(p *Profile) { p.IndirectFrac = 0.1; p.IndirectTargets = 0 },
		func(p *Profile) { p.Phases = nil },
		func(p *Profile) { p.Phases[0].Len = 0 },
		func(p *Profile) { p.Phases[0].Mix[isa.OpBranch] = 0.5 },
		func(p *Profile) { p.Phases[0].Mix = [isa.NumOpClasses]float64{} },
		func(p *Profile) { p.Phases[0].DepMax = 0 },
		func(p *Profile) { p.Phases[0].DepMax = 200 },
		func(p *Profile) { p.Phases[0].DepMean = 0.5 },
		func(p *Profile) { p.Phases[0].DataFootprint = 8 },
	}
	for i, mut := range mutations {
		p := base
		p.Phases = append([]Phase(nil), base.Phases...)
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d: expected validation error", i)
		}
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("base profile invalid: %v", err)
	}
}

func TestNewPanicsOnInvalidProfile(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New did not panic on invalid profile")
		}
	}()
	p := testProfile()
	p.Phases = nil
	New(p)
}

func TestClassString(t *testing.T) {
	if IntClass.String() != "int" || FPClass.String() != "fp" {
		t.Fatal("class strings wrong")
	}
}

func BenchmarkGeneratorNext(b *testing.B) {
	g := New(testProfile())
	for i := 0; i < b.N; i++ {
		_ = g.Next()
	}
}
