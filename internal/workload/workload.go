// Package workload defines the 25 synthetic benchmark profiles standing in
// for the paper's SPEC2K SimPoint workloads: 11 integer benchmarks (mcf is
// excluded, as in the paper) and 14 floating-point benchmarks.
//
// Each profile's parameters — instruction mix, dependency distances, branch
// population, code and data footprints, hot-region locality — are tuned so
// that its single-thread (SS1) IPC and its sensitivities to the paper's
// X/C/B/S factors land in the band the paper reports for the benchmark of
// the same name. The tuning targets are the SS1 IPCs read off the paper's
// Figure 2 and the per-class factor effects of Table 3. See
// docs/EXPERIMENTS.md for the experiment catalog that reports the
// measured values.
package workload

import (
	"fmt"
	"sort"

	"repro/internal/isa"
	"repro/internal/trace"
)

const (
	kb = 1024
	mb = 1024 * 1024
)

// mix builds a mix array from per-class weights (branch weight stays zero;
// branches come from the block structure).
func mix(ialu, imul, idiv, fadd, fmul, fdiv, load, store float64) [isa.NumOpClasses]float64 {
	var m [isa.NumOpClasses]float64
	m[isa.OpIALU] = ialu
	m[isa.OpIMul] = imul
	m[isa.OpIDiv] = idiv
	m[isa.OpFAdd] = fadd
	m[isa.OpFMul] = fmul
	m[isa.OpFDiv] = fdiv
	m[isa.OpLoad] = load
	m[isa.OpStore] = store
	return m
}

// seedFor derives a stable per-benchmark seed from its name (FNV-1a).
func seedFor(name string) uint64 {
	var h uint64 = 0xcbf29ce484222325
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 0x100000001b3
	}
	return h
}

// intProfile fills the common fields of an integer benchmark.
func intProfile(name string, high bool, p trace.Profile) trace.Profile {
	p.Name = name
	p.Class = trace.IntClass
	p.HighIPC = high
	p.Seed = seedFor(name)
	return p
}

// fpProfile fills the common fields of a floating-point benchmark.
func fpProfile(name string, high bool, p trace.Profile) trace.Profile {
	p.Name = name
	p.Class = trace.FPClass
	p.HighIPC = high
	p.Seed = seedFor(name)
	return p
}

// phase1 wraps a single phase.
func phase1(ph trace.Phase) []trace.Phase {
	if ph.Len == 0 {
		ph.Len = 1 << 20
	}
	return []trace.Phase{ph}
}

// Integer returns the 11 SPECint2K-like profiles in ascending SS1-IPC
// order, matching the paper's Figure 2(a).
func Integer() []trace.Profile {
	return []trace.Profile{
		// gap: group theory interpreter. Modest ILP, mediocre branch
		// predictability, pointer-heavy heap traffic.
		intProfile("gap", false, trace.Profile{
			CodeFootprint: 192 * kb, AvgBlockLen: 6,
			CodeHotFrac: 0.9, CodeHotBytes: 32 * kb,
			LoopFrac: 0.10, UncondFrac: 0.12, IndirectFrac: 0.04,
			LoopMean: 12, PredictableFrac: 0.80, IndirectTargets: 6,
			Phases: phase1(trace.Phase{
				Mix:     mix(0.52, 0.03, 0.004, 0, 0, 0, 0.30, 0.15),
				DepMean: 4, DepMax: 24, ChainFrac: 0.40, SrcTwoProb: 0.35,
				DataFootprint: 24 * mb, StrideFrac: 0.25, StrideBytes: 16,
				PointerChaseFrac: 0.34, ChaseColdFrac: 0.05, HotFrac: 0.82, HotBytes: 48 * kb,
				BranchSpineFrac: 0.45,
			}),
		}),
		// vpr-route: maze routing over large graphs; pointer chasing and
		// poorly predictable comparisons.
		intProfile("vpr-route", false, trace.Profile{
			CodeFootprint: 96 * kb, AvgBlockLen: 5,
			CodeHotFrac: 0.9, CodeHotBytes: 32 * kb,
			LoopFrac: 0.12, UncondFrac: 0.08, IndirectFrac: 0.01,
			LoopMean: 10, PredictableFrac: 0.76, IndirectTargets: 4,
			Phases: phase1(trace.Phase{
				Mix:     mix(0.50, 0.02, 0.003, 0.04, 0.03, 0.003, 0.27, 0.11),
				DepMean: 4, DepMax: 24, ChainFrac: 0.40, SrcTwoProb: 0.4,
				DataFootprint: 16 * mb, StrideFrac: 0.25, StrideBytes: 16,
				PointerChaseFrac: 0.32, ChaseColdFrac: 0.055, HotFrac: 0.82, HotBytes: 48 * kb,
				BranchSpineFrac: 0.40,
			}),
		}),
		// parser: dictionary word parsing; heavy pointer chasing, short
		// blocks, data-dependent branches.
		intProfile("parser", false, trace.Profile{
			CodeFootprint: 128 * kb, AvgBlockLen: 5,
			CodeHotFrac: 0.9, CodeHotBytes: 32 * kb,
			LoopFrac: 0.10, UncondFrac: 0.10, IndirectFrac: 0.02,
			LoopMean: 8, PredictableFrac: 0.80, IndirectTargets: 4,
			Phases: phase1(trace.Phase{
				Mix:     mix(0.55, 0.01, 0.002, 0, 0, 0, 0.28, 0.12),
				DepMean: 4, DepMax: 20, ChainFrac: 0.40, SrcTwoProb: 0.35,
				DataFootprint: 12 * mb, StrideFrac: 0.20, StrideBytes: 8,
				PointerChaseFrac: 0.36, ChaseColdFrac: 0.03, HotFrac: 0.86, HotBytes: 40 * kb,
				BranchSpineFrac: 0.45,
			}),
		}),
		// twolf: placement/routing simulated annealing; pointer heavy
		// with mispredict-prone comparisons.
		intProfile("twolf", false, trace.Profile{
			CodeFootprint: 96 * kb, AvgBlockLen: 5,
			CodeHotFrac: 0.9, CodeHotBytes: 32 * kb,
			LoopFrac: 0.12, UncondFrac: 0.08, IndirectFrac: 0.01,
			LoopMean: 10, PredictableFrac: 0.80, IndirectTargets: 4,
			Phases: phase1(trace.Phase{
				Mix:     mix(0.50, 0.04, 0.004, 0.03, 0.02, 0.002, 0.27, 0.12),
				DepMean: 5, DepMax: 24, ChainFrac: 0.36, SrcTwoProb: 0.4,
				DataFootprint: 8 * mb, StrideFrac: 0.25, StrideBytes: 16,
				PointerChaseFrac: 0.28, ChaseColdFrac: 0.03, HotFrac: 0.85, HotBytes: 48 * kb,
				BranchSpineFrac: 0.45,
			}),
		}),
		// bzip2-source: block-sorting compression; loopy with moderate
		// predictability, working set with strided sweeps.
		intProfile("bzip2-source", false, trace.Profile{
			CodeFootprint: 64 * kb, AvgBlockLen: 7,
			CodeHotFrac: 0.9, CodeHotBytes: 32 * kb,
			LoopFrac: 0.12, UncondFrac: 0.07, IndirectFrac: 0.0,
			LoopMean: 18, PredictableFrac: 0.72, IndirectTargets: 1,
			Phases: phase1(trace.Phase{
				Mix:     mix(0.56, 0.02, 0.001, 0, 0, 0, 0.27, 0.14),
				DepMean: 6, DepMax: 28, ChainFrac: 0.30, SrcTwoProb: 0.4,
				DataFootprint: 6 * mb, StrideFrac: 0.60, StrideBytes: 8,
				PointerChaseFrac: 0.10, HotFrac: 0.80, HotBytes: 48 * kb,
				BranchSpineFrac: 0.55,
			}),
		}),
		// perlbmk-diff: interpreter with big code, indirect dispatch.
		intProfile("perlbmk-diff", false, trace.Profile{
			CodeFootprint: 512 * kb, AvgBlockLen: 6,
			CodeHotFrac: 0.9, CodeHotBytes: 32 * kb,
			LoopFrac: 0.10, UncondFrac: 0.14, IndirectFrac: 0.05,
			LoopMean: 10, PredictableFrac: 0.88, IndirectTargets: 8,
			Phases: phase1(trace.Phase{
				Mix:     mix(0.55, 0.02, 0.002, 0, 0, 0, 0.28, 0.14),
				DepMean: 6, DepMax: 28, ChainFrac: 0.30, SrcTwoProb: 0.4,
				DataFootprint: 4 * mb, StrideFrac: 0.40, StrideBytes: 16,
				PointerChaseFrac: 0.14, HotFrac: 0.90, HotBytes: 48 * kb,
				BranchSpineFrac: 0.55,
			}),
		}),
		// gzip-graphic: LZ77 compression of image data; predictable
		// loops, small working set.
		intProfile("gzip-graphic", false, trace.Profile{
			CodeFootprint: 48 * kb, AvgBlockLen: 7,
			CodeHotFrac: 0.9, CodeHotBytes: 32 * kb,
			LoopFrac: 0.22, UncondFrac: 0.06, IndirectFrac: 0.0,
			LoopMean: 16, PredictableFrac: 0.88, IndirectTargets: 1,
			Phases: phase1(trace.Phase{
				Mix:     mix(0.58, 0.01, 0.001, 0, 0, 0, 0.27, 0.14),
				DepMean: 7, DepMax: 28, ChainFrac: 0.26, SrcTwoProb: 0.45,
				DataFootprint: 1536 * kb, StrideFrac: 0.70, StrideBytes: 8,
				PointerChaseFrac: 0.06, HotFrac: 0.85, HotBytes: 48 * kb,
				BranchSpineFrac: 0.60,
			}),
		}),
		// gcc-166: compiler; very large code footprint stresses the L1I,
		// branchy but reasonably predictable.
		intProfile("gcc-166", true, trace.Profile{
			CodeFootprint: 1536 * kb, AvgBlockLen: 6,
			CodeHotFrac: 0.88, CodeHotBytes: 64 * kb,
			LoopFrac: 0.10, UncondFrac: 0.14, IndirectFrac: 0.03,
			LoopMean: 10, PredictableFrac: 0.90, IndirectTargets: 6,
			Phases: phase1(trace.Phase{
				Mix:     mix(0.57, 0.02, 0.002, 0, 0, 0, 0.27, 0.13),
				DepMean: 12, DepMax: 44, ChainFrac: 0.18, SrcTwoProb: 0.4,
				DataFootprint: 160 * kb, StrideFrac: 0.70, StrideBytes: 16,
				PointerChaseFrac: 0.42, HotFrac: 0.91, HotBytes: 48 * kb,
				BranchSpineFrac: 0.60,
			}),
		}),
		// crafty: chess search; high ILP bit-board operations, highly
		// predictable control, cache-resident tables.
		intProfile("crafty", true, trace.Profile{
			CodeFootprint: 256 * kb, AvgBlockLen: 8,
			CodeHotFrac: 0.9, CodeHotBytes: 32 * kb,
			LoopFrac: 0.14, UncondFrac: 0.10, IndirectFrac: 0.01,
			LoopMean: 12, PredictableFrac: 0.92, IndirectTargets: 4,
			Phases: phase1(trace.Phase{
				Mix:     mix(0.62, 0.03, 0.002, 0, 0, 0, 0.24, 0.10),
				DepMean: 11, DepMax: 40, ChainFrac: 0.16, SrcTwoProb: 0.45,
				DataFootprint: 128 * kb, StrideFrac: 0.75, StrideBytes: 16,
				PointerChaseFrac: 0.52, HotFrac: 0.92, HotBytes: 48 * kb,
				BranchSpineFrac: 0.65,
			}),
		}),
		// eon-rushmeier: C++ ray tracer; high ILP, predictable, small
		// working set, a little FP.
		intProfile("eon-rushmeier", true, trace.Profile{
			CodeFootprint: 192 * kb, AvgBlockLen: 9,
			CodeHotFrac: 0.9, CodeHotBytes: 32 * kb,
			LoopFrac: 0.16, UncondFrac: 0.10, IndirectFrac: 0.02,
			LoopMean: 14, PredictableFrac: 0.94, IndirectTargets: 4,
			Phases: phase1(trace.Phase{
				Mix:     mix(0.50, 0.03, 0.002, 0.08, 0.06, 0.004, 0.22, 0.10),
				DepMean: 13, DepMax: 48, ChainFrac: 0.13, SrcTwoProb: 0.5,
				DataFootprint: 96 * kb, StrideFrac: 0.75, StrideBytes: 16,
				PointerChaseFrac: 0.50, HotFrac: 0.93, HotBytes: 48 * kb,
				BranchSpineFrac: 0.70,
			}),
		}),
		// vortex-one: object database; large code, very predictable
		// control, high ILP.
		intProfile("vortex-one", true, trace.Profile{
			CodeFootprint: 768 * kb, AvgBlockLen: 9,
			CodeHotFrac: 0.9, CodeHotBytes: 32 * kb,
			LoopFrac: 0.12, UncondFrac: 0.12, IndirectFrac: 0.02,
			LoopMean: 12, PredictableFrac: 0.97, IndirectTargets: 4,
			Phases: phase1(trace.Phase{
				Mix:     mix(0.60, 0.02, 0.001, 0, 0, 0, 0.25, 0.12),
				DepMean: 17, DepMax: 64, ChainFrac: 0.10, SrcTwoProb: 0.45,
				DataFootprint: 96 * kb, StrideFrac: 0.75, StrideBytes: 16,
				PointerChaseFrac: 0.38, HotFrac: 0.94, HotBytes: 48 * kb,
				BranchSpineFrac: 0.75,
			}),
		}),
	}
}

// FloatingPoint returns the 14 SPECfp2K-like profiles in ascending SS1-IPC
// order, matching the paper's Figure 2(b).
func FloatingPoint() []trace.Profile {
	return []trace.Profile{
		// equake: sparse matrix earthquake simulation; irregular memory
		// with a working set far beyond the L2.
		fpProfile("equake", false, trace.Profile{
			CodeFootprint: 48 * kb, AvgBlockLen: 8,
			CodeHotFrac: 0.9, CodeHotBytes: 32 * kb,
			LoopFrac: 0.22, UncondFrac: 0.05, IndirectFrac: 0.0,
			LoopMean: 14, PredictableFrac: 0.92, IndirectTargets: 1,
			Phases: phase1(trace.Phase{
				Mix:     mix(0.28, 0.01, 0.001, 0.22, 0.14, 0.004, 0.26, 0.09),
				DepMean: 6, DepMax: 28, ChainFrac: 0.32, SrcTwoProb: 0.55,
				DataFootprint: 48 * mb, StrideFrac: 0.30, StrideBytes: 8,
				PointerChaseFrac: 0.05, ChaseColdFrac: 0.75, HotFrac: 0.28, HotBytes: 32 * kb,
				BranchSpineFrac: 0.85,
			}),
		}),
		// fma3d: crash simulation; big code, memory bound with mixed
		// access patterns.
		fpProfile("fma3d", false, trace.Profile{
			CodeFootprint: 1024 * kb, AvgBlockLen: 8,
			CodeHotFrac: 0.9, CodeHotBytes: 32 * kb,
			LoopFrac: 0.20, UncondFrac: 0.08, IndirectFrac: 0.0,
			LoopMean: 12, PredictableFrac: 0.92, IndirectTargets: 1,
			Phases: phase1(trace.Phase{
				Mix:     mix(0.30, 0.02, 0.001, 0.22, 0.14, 0.006, 0.23, 0.09),
				DepMean: 7, DepMax: 32, ChainFrac: 0.28, SrcTwoProb: 0.55,
				DataFootprint: 32 * mb, StrideFrac: 0.50, StrideBytes: 24,
				PointerChaseFrac: 0.05, ChaseColdFrac: 0.55, HotFrac: 0.30, HotBytes: 32 * kb,
				BranchSpineFrac: 0.85,
			}),
		}),
		// lucas: Lucas-Lehmer primality FFTs; long strided sweeps over a
		// huge array.
		fpProfile("lucas", false, trace.Profile{
			CodeFootprint: 32 * kb, AvgBlockLen: 10,
			CodeHotFrac: 0.9, CodeHotBytes: 32 * kb,
			LoopFrac: 0.26, UncondFrac: 0.04, IndirectFrac: 0.0,
			LoopMean: 18, PredictableFrac: 0.96, IndirectTargets: 1,
			Phases: phase1(trace.Phase{
				Mix:     mix(0.24, 0.02, 0.001, 0.26, 0.18, 0.004, 0.21, 0.09),
				DepMean: 8, DepMax: 36, ChainFrac: 0.24, SrcTwoProb: 0.6,
				DataFootprint: 40 * mb, StrideFrac: 0.75, StrideBytes: 64,
				HotFrac: 0.20, HotBytes: 32 * kb,
				BranchSpineFrac: 0.9,
			}),
		}),
		// facerec: face recognition; alternating compute and memory
		// sweep phases.
		fpProfile("facerec", false, trace.Profile{
			CodeFootprint: 64 * kb, AvgBlockLen: 9,
			CodeHotFrac: 0.9, CodeHotBytes: 32 * kb,
			LoopFrac: 0.24, UncondFrac: 0.05, IndirectFrac: 0.0,
			LoopMean: 16, PredictableFrac: 0.94, IndirectTargets: 1,
			Phases: []trace.Phase{
				{
					Len:     22000,
					Mix:     mix(0.26, 0.01, 0.001, 0.27, 0.19, 0.003, 0.19, 0.08),
					DepMean: 8, DepMax: 36, ChainFrac: 0.17, SrcTwoProb: 0.6,
					DataFootprint: 256 * kb, StrideFrac: 0.80, StrideBytes: 8,
					HotFrac: 0.45, HotBytes: 32 * kb, BranchSpineFrac: 0.9,
				},
				{
					Len:     70000,
					Mix:     mix(0.30, 0.01, 0.001, 0.20, 0.12, 0.002, 0.27, 0.10),
					DepMean: 7, DepMax: 32, ChainFrac: 0.26, SrcTwoProb: 0.5,
					DataFootprint: 24 * mb, StrideFrac: 0.30, StrideBytes: 32,
					HotFrac: 0.15, HotBytes: 32 * kb, BranchSpineFrac: 0.9,
				},
			},
		}),
		// swim: shallow water stencil; pure streaming over arrays far
		// beyond the L2, the classic MLP-bound code.
		fpProfile("swim", false, trace.Profile{
			CodeFootprint: 24 * kb, AvgBlockLen: 12,
			CodeHotFrac: 0.9, CodeHotBytes: 32 * kb,
			LoopFrac: 0.30, UncondFrac: 0.03, IndirectFrac: 0.0,
			LoopMean: 26, PredictableFrac: 0.97, IndirectTargets: 1,
			Phases: phase1(trace.Phase{
				Mix:     mix(0.22, 0.01, 0.0, 0.27, 0.18, 0.002, 0.22, 0.10),
				DepMean: 12, DepMax: 48, ChainFrac: 0.15, SrcTwoProb: 0.6,
				DataFootprint: 64 * mb, StrideFrac: 0.88, StrideBytes: 16,
				HotFrac: 0.30, HotBytes: 32 * kb,
				BranchSpineFrac: 0.92,
			}),
		}),
		// mgrid: multigrid stencil; streaming with some reuse.
		fpProfile("mgrid", false, trace.Profile{
			CodeFootprint: 24 * kb, AvgBlockLen: 12,
			CodeHotFrac: 0.9, CodeHotBytes: 32 * kb,
			LoopFrac: 0.30, UncondFrac: 0.03, IndirectFrac: 0.0,
			LoopMean: 22, PredictableFrac: 0.97, IndirectTargets: 1,
			Phases: phase1(trace.Phase{
				Mix:     mix(0.22, 0.01, 0.0, 0.28, 0.20, 0.002, 0.20, 0.09),
				DepMean: 13, DepMax: 48, ChainFrac: 0.14, SrcTwoProb: 0.65,
				DataFootprint: 12 * mb, StrideFrac: 0.82, StrideBytes: 16,
				HotFrac: 0.55, HotBytes: 32 * kb,
				BranchSpineFrac: 0.92,
			}),
		}),
		// applu: SSOR PDE solver; streaming plus longer FP chains.
		fpProfile("applu", false, trace.Profile{
			CodeFootprint: 48 * kb, AvgBlockLen: 11,
			CodeHotFrac: 0.9, CodeHotBytes: 32 * kb,
			LoopFrac: 0.28, UncondFrac: 0.04, IndirectFrac: 0.0,
			LoopMean: 20, PredictableFrac: 0.96, IndirectTargets: 1,
			Phases: phase1(trace.Phase{
				Mix:     mix(0.22, 0.01, 0.001, 0.27, 0.19, 0.006, 0.21, 0.09),
				DepMean: 14, DepMax: 56, ChainFrac: 0.14, SrcTwoProb: 0.6,
				DataFootprint: 8 * mb, StrideFrac: 0.78, StrideBytes: 24,
				HotFrac: 0.62, HotBytes: 32 * kb,
				BranchSpineFrac: 0.92,
			}),
		}),
		// art-110: neural network image recognition; hot arrays with
		// heavy FP multiply pressure and periodic sweep misses.
		fpProfile("art-110", false, trace.Profile{
			CodeFootprint: 24 * kb, AvgBlockLen: 10,
			CodeHotFrac: 0.9, CodeHotBytes: 32 * kb,
			LoopFrac: 0.28, UncondFrac: 0.04, IndirectFrac: 0.0,
			LoopMean: 22, PredictableFrac: 0.95, IndirectTargets: 1,
			Phases: phase1(trace.Phase{
				Mix:     mix(0.20, 0.01, 0.0, 0.24, 0.28, 0.002, 0.19, 0.08),
				DepMean: 10, DepMax: 40, ChainFrac: 0.17, SrcTwoProb: 0.65,
				DataFootprint: 2 * mb, StrideFrac: 0.78, StrideBytes: 8,
				HotFrac: 0.72, HotBytes: 96 * kb,
				BranchSpineFrac: 0.9,
			}),
		}),
		// ammp: molecular dynamics; neighbor lists with pointer chasing
		// between compute bursts.
		fpProfile("ammp", false, trace.Profile{
			CodeFootprint: 96 * kb, AvgBlockLen: 9,
			CodeHotFrac: 0.9, CodeHotBytes: 32 * kb,
			LoopFrac: 0.24, UncondFrac: 0.06, IndirectFrac: 0.0,
			LoopMean: 14, PredictableFrac: 0.94, IndirectTargets: 1,
			Phases: []trace.Phase{
				{
					Len:     85000,
					Mix:     mix(0.24, 0.01, 0.001, 0.26, 0.20, 0.01, 0.19, 0.08),
					DepMean: 11, DepMax: 44, ChainFrac: 0.17, SrcTwoProb: 0.6,
					DataFootprint: 256 * kb, StrideFrac: 0.70, StrideBytes: 16,
					HotFrac: 0.90, HotBytes: 48 * kb, BranchSpineFrac: 0.9,
				},
				{
					Len:     15000,
					Mix:     mix(0.32, 0.01, 0.001, 0.16, 0.10, 0.002, 0.29, 0.10),
					DepMean: 6, DepMax: 28, ChainFrac: 0.30, SrcTwoProb: 0.5,
					DataFootprint: 16 * mb, StrideFrac: 0.25, StrideBytes: 8,
					PointerChaseFrac: 0.10, ChaseColdFrac: 0.4, HotFrac: 0.40, HotBytes: 48 * kb,
					BranchSpineFrac: 0.8,
				},
			},
		}),
		// wupwise: lattice QCD; dense linear algebra with good locality.
		fpProfile("wupwise", false, trace.Profile{
			CodeFootprint: 48 * kb, AvgBlockLen: 11,
			CodeHotFrac: 0.9, CodeHotBytes: 32 * kb,
			LoopFrac: 0.26, UncondFrac: 0.05, IndirectFrac: 0.0,
			LoopMean: 20, PredictableFrac: 0.96, IndirectTargets: 1,
			Phases: phase1(trace.Phase{
				Mix:     mix(0.24, 0.02, 0.001, 0.26, 0.21, 0.004, 0.18, 0.09),
				DepMean: 18, DepMax: 64, ChainFrac: 0.12, SrcTwoProb: 0.65,
				DataFootprint: 768 * kb, StrideFrac: 0.80, StrideBytes: 16,
				HotFrac: 0.82, HotBytes: 48 * kb,
				BranchSpineFrac: 0.92,
			}),
		}),
		// galgel: fluid dynamics eigenproblem; cache resident with very
		// high FP ILP.
		fpProfile("galgel", true, trace.Profile{
			CodeFootprint: 48 * kb, AvgBlockLen: 12,
			CodeHotFrac: 0.9, CodeHotBytes: 32 * kb,
			LoopFrac: 0.28, UncondFrac: 0.04, IndirectFrac: 0.0,
			LoopMean: 24, PredictableFrac: 0.97, IndirectTargets: 1,
			Phases: phase1(trace.Phase{
				Mix:     mix(0.20, 0.01, 0.0, 0.29, 0.23, 0.028, 0.17, 0.08),
				DepMean: 10, DepMax: 20, ChainFrac: 0.15, SrcTwoProb: 0.65,
				DataFootprint: 96 * kb, StrideFrac: 0.85, StrideBytes: 16,
				HotFrac: 0.85, HotBytes: 48 * kb,
				BranchSpineFrac: 0.94,
			}),
		}),
		// sixtrack: particle tracking; FP-unit saturated, tiny working
		// set.
		fpProfile("sixtrack", true, trace.Profile{
			CodeFootprint: 96 * kb, AvgBlockLen: 13,
			CodeHotFrac: 0.9, CodeHotBytes: 32 * kb,
			LoopFrac: 0.26, UncondFrac: 0.05, IndirectFrac: 0.0,
			LoopMean: 26, PredictableFrac: 0.97, IndirectTargets: 1,
			Phases: phase1(trace.Phase{
				Mix:     mix(0.22, 0.01, 0.0, 0.28, 0.25, 0.014, 0.15, 0.07),
				DepMean: 9, DepMax: 18, ChainFrac: 0.14, SrcTwoProb: 0.7,
				DataFootprint: 96 * kb, StrideFrac: 0.85, StrideBytes: 16,
				HotFrac: 0.90, HotBytes: 48 * kb,
				BranchSpineFrac: 0.95,
			}),
		}),
		// mesa: software 3D rasterizer; int/FP blend with extreme ILP
		// and near-perfect prediction.
		fpProfile("mesa", true, trace.Profile{
			CodeFootprint: 128 * kb, AvgBlockLen: 12,
			CodeHotFrac: 0.9, CodeHotBytes: 32 * kb,
			LoopFrac: 0.24, UncondFrac: 0.07, IndirectFrac: 0.01,
			LoopMean: 22, PredictableFrac: 0.92, IndirectTargets: 4,
			Phases: phase1(trace.Phase{
				Mix:     mix(0.28, 0.03, 0.001, 0.24, 0.17, 0.006, 0.17, 0.10),
				DepMean: 14, DepMax: 28, ChainFrac: 0.10, SrcTwoProb: 0.6,
				DataFootprint: 96 * kb, StrideFrac: 0.82, StrideBytes: 16,
				PointerChaseFrac: 0.02, HotFrac: 0.92, HotBytes: 48 * kb,
				BranchSpineFrac: 0.95,
			}),
		}),
		// apsi: mesoscale weather; the highest-IPC FP code with dense
		// loops and strong locality.
		fpProfile("apsi", true, trace.Profile{
			CodeFootprint: 96 * kb, AvgBlockLen: 15,
			CodeHotFrac: 0.9, CodeHotBytes: 32 * kb,
			LoopFrac: 0.26, UncondFrac: 0.05, IndirectFrac: 0.0,
			LoopMean: 34, PredictableFrac: 0.97, IndirectTargets: 1,
			Phases: phase1(trace.Phase{
				Mix:     mix(0.30, 0.02, 0.0, 0.25, 0.19, 0.001, 0.16, 0.08),
				DepMean: 36, DepMax: 104, ChainFrac: 0.06, SrcTwoProb: 0.42,
				DataFootprint: 96 * kb, StrideFrac: 0.85, StrideBytes: 16,
				HotFrac: 0.92, HotBytes: 48 * kb,
				BranchSpineFrac: 0.96,
			}),
		}),
	}
}

// All returns every profile: integer benchmarks first, then floating point,
// each in ascending SS1-IPC order.
func All() []trace.Profile {
	return append(Integer(), FloatingPoint()...)
}

// ByName returns the profile with the given name.
func ByName(name string) (trace.Profile, error) {
	for _, p := range All() {
		if p.Name == name {
			return p, nil
		}
	}
	return trace.Profile{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// Names returns all benchmark names in presentation order.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, p := range all {
		names[i] = p.Name
	}
	return names
}

// SortedNames returns all names alphabetically (for lookup tables).
func SortedNames() []string {
	names := Names()
	sort.Strings(names)
	return names
}
