package workload

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/trace"
)

func TestCounts(t *testing.T) {
	if n := len(Integer()); n != 11 {
		t.Errorf("integer benchmarks = %d, want 11 (mcf excluded)", n)
	}
	if n := len(FloatingPoint()); n != 14 {
		t.Errorf("fp benchmarks = %d, want 14", n)
	}
	if n := len(All()); n != 25 {
		t.Errorf("total = %d, want 25", n)
	}
}

func TestMcfExcluded(t *testing.T) {
	if _, err := ByName("mcf"); err == nil {
		t.Fatal("mcf must be excluded, as in the paper")
	}
}

func TestAllProfilesValid(t *testing.T) {
	for _, p := range All() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestAllProfilesGenerate(t *testing.T) {
	for _, p := range All() {
		g := trace.New(p)
		for i := 0; i < 5000; i++ {
			in := g.Next()
			if err := in.Validate(); err != nil {
				t.Fatalf("%s instruction %d: %v", p.Name, i, err)
			}
		}
	}
}

func TestClassesAndOrder(t *testing.T) {
	for _, p := range Integer() {
		if p.Class != trace.IntClass {
			t.Errorf("%s misclassified as %v", p.Name, p.Class)
		}
	}
	for _, p := range FloatingPoint() {
		if p.Class != trace.FPClass {
			t.Errorf("%s misclassified as %v", p.Name, p.Class)
		}
	}
	// Paper's high-IPC subsets.
	wantHigh := map[string]bool{
		"gcc-166": true, "crafty": true, "eon-rushmeier": true, "vortex-one": true,
		"galgel": true, "sixtrack": true, "mesa": true, "apsi": true,
	}
	for _, p := range All() {
		if p.HighIPC != wantHigh[p.Name] {
			t.Errorf("%s HighIPC = %v, want %v", p.Name, p.HighIPC, wantHigh[p.Name])
		}
	}
}

func TestSeedsUniqueAndStable(t *testing.T) {
	seen := map[uint64]string{}
	for _, p := range All() {
		if other, dup := seen[p.Seed]; dup {
			t.Errorf("%s and %s share seed %#x", p.Name, other, p.Seed)
		}
		seen[p.Seed] = p.Name
	}
	// Stability: the seed is a pure function of the name.
	a, _ := ByName("swim")
	b, _ := ByName("swim")
	if a.Seed != b.Seed {
		t.Fatal("seed not stable across lookups")
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("swim")
	if err != nil || p.Name != "swim" || p.Class != trace.FPClass {
		t.Fatalf("ByName(swim) = %+v, %v", p.Name, err)
	}
	if _, err := ByName("nonexistent"); err == nil {
		t.Fatal("no error for unknown name")
	}
}

func TestNames(t *testing.T) {
	names := Names()
	if len(names) != 25 || names[0] != "gap" {
		t.Fatalf("Names() = %v", names)
	}
	sorted := SortedNames()
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1] >= sorted[i] {
			t.Fatal("SortedNames not sorted")
		}
	}
}

func TestIntProfilesHaveNoHeavyFP(t *testing.T) {
	for _, p := range Integer() {
		for _, ph := range p.Phases {
			fp := ph.Mix[isa.OpFAdd] + ph.Mix[isa.OpFMul] + ph.Mix[isa.OpFDiv]
			var total float64
			for _, w := range ph.Mix {
				total += w
			}
			if fp/total > 0.25 {
				t.Errorf("%s: integer benchmark with %.0f%% FP mix", p.Name, 100*fp/total)
			}
		}
	}
}

func TestFPProfilesHaveFP(t *testing.T) {
	for _, p := range FloatingPoint() {
		anyFP := false
		for _, ph := range p.Phases {
			if ph.Mix[isa.OpFAdd]+ph.Mix[isa.OpFMul] > 0 {
				anyFP = true
			}
		}
		if !anyFP {
			t.Errorf("%s: fp benchmark without FP operations", p.Name)
		}
	}
}

// The distinguishing characteristics the tuning relies on must hold
// structurally: memory-bound fp codes have footprints beyond the L2;
// high-IPC codes have larger dependency distances than low-IPC ones.
func TestCharacteristicStructure(t *testing.T) {
	memBound := []string{"equake", "lucas", "swim", "mgrid", "fma3d"}
	for _, name := range memBound {
		p, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Phases[0].DataFootprint <= 2*1024*1024 {
			t.Errorf("%s: memory-bound profile fits in the L2", name)
		}
	}
	vortex, _ := ByName("vortex-one")
	parser, _ := ByName("parser")
	if vortex.Phases[0].DepMean <= parser.Phases[0].DepMean {
		t.Error("high-IPC vortex should have more ILP than parser")
	}
}
