package repro

import (
	"context"
	"errors"
	"sync/atomic"

	"repro/internal/campaign"
	"repro/internal/explore"
)

// ---------------------------------------------------------------------------
// Job: the unified async-operation API.
//
// Campaigns and explorations are the client's two long-running operations;
// both used to be synchronous methods with an ad-hoc progress callback
// parameter. Job unifies them: StartCampaign and StartExplore return
// immediately with a typed handle that the caller can wait on, poll, or
// cancel, and progress delivery is a functional option (WithProgress)
// rather than a positional parameter. The old synchronous methods remain
// as thin wrappers.

// ErrJobRunning is returned by Job.Result while the job is still running.
var ErrJobRunning = errors.New("repro: job still running")

// Job is a handle to one asynchronous operation started by the client.
// S is the operation's spec type, P its progress-snapshot type, and R its
// result type. A Job is safe for concurrent use.
type Job[S, P, R any] struct {
	spec   S
	done   chan struct{}
	cancel context.CancelFunc
	// finished guards res/err: they are written exactly once, strictly
	// before done closes, and read only after Done (or through Result's
	// finished check).
	finished atomic.Bool
	res      *R
	err      error
}

// CampaignJob is the handle of a running fault-injection campaign.
type CampaignJob = Job[CampaignSpec, CampaignProgress, CampaignResult]

// ExploreJob is the handle of a running design-space exploration.
type ExploreJob = Job[ExploreSpec, ExploreProgress, ExploreResult]

// jobConfig collects the functional options of a job start.
type jobConfig[P any] struct {
	progress func(P)
}

// JobOption configures a started job; P is the job's progress type.
type JobOption[P any] func(*jobConfig[P])

// WithProgress delivers a serialized snapshot to fn after every unit of
// work (a finished trial or point evaluation). fn runs on the job's own
// goroutine, so a slow callback backpressures the job rather than racing
// it; keep it quick or hand off to a channel.
func WithProgress[P any](fn func(P)) JobOption[P] {
	return func(c *jobConfig[P]) { c.progress = fn }
}

// startJob launches run on its own goroutine under a cancelable child of
// ctx and returns the handle.
func startJob[S, P, R any](ctx context.Context, spec S, opts []JobOption[P],
	run func(ctx context.Context, progress func(P)) (*R, error)) *Job[S, P, R] {
	var cfg jobConfig[P]
	for _, o := range opts {
		o(&cfg)
	}
	jctx, cancel := context.WithCancel(ctx)
	j := &Job[S, P, R]{spec: spec, done: make(chan struct{}), cancel: cancel}
	go func() {
		defer cancel()
		j.res, j.err = run(jctx, cfg.progress)
		j.finished.Store(true)
		close(j.done)
	}()
	return j
}

// Spec returns the spec the job was started with, as given (engines
// normalize defaults internally; the normalized form is on the result).
func (j *Job[S, P, R]) Spec() S { return j.spec }

// Done returns a channel closed when the job has finished (successfully,
// with an error, or by cancellation), for use in select loops.
func (j *Job[S, P, R]) Done() <-chan struct{} { return j.done }

// Wait blocks until the job finishes or ctx is done, whichever comes
// first, and returns the outcome. A ctx expiry in Wait does not cancel
// the job — use Cancel for that (or start the job under a bounded ctx).
func (j *Job[S, P, R]) Wait(ctx context.Context) (*R, error) {
	select {
	case <-j.done:
		return j.res, j.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Result returns the outcome without blocking: ErrJobRunning while the
// job is still running, otherwise exactly what Wait would return.
func (j *Job[S, P, R]) Result() (*R, error) {
	if !j.finished.Load() {
		return nil, ErrJobRunning
	}
	return j.res, j.err
}

// Cancel asks the job to stop at its next cancellation checkpoint. The
// job still finishes (Done closes, with a context error); finished work
// persisted to an attached store survives for a later resume. Cancel is
// idempotent and safe after completion.
func (j *Job[S, P, R]) Cancel() { j.cancel() }

// StartCampaign launches a Monte Carlo fault-injection campaign and
// returns immediately. Trials fan out through the client's shared
// simulation cache and parallelism bound; with a store attached
// (WithStore), finished trials persist, so a canceled or interrupted
// campaign resumes where it left off instead of re-simulating.
func (c *Client) StartCampaign(ctx context.Context, spec CampaignSpec, opts ...JobOption[CampaignProgress]) *CampaignJob {
	eng := campaign.New(c.suite())
	if c.st != nil {
		eng.WithStore(c.st)
	}
	return startJob[CampaignSpec, CampaignProgress, CampaignResult](ctx, spec, opts,
		func(ctx context.Context, progress func(CampaignProgress)) (*CampaignResult, error) {
			return eng.Run(ctx, spec, progress)
		})
}

// StartExplore launches a design-space exploration and returns
// immediately. The space's points are evaluated through the client's
// shared simulation cache and parallelism bound — exhaustively, or
// screened by seeded successive halving — and the Pareto-efficient
// configurations are extracted. With a store attached (WithStore),
// finished point evaluations persist, so a canceled or interrupted
// exploration resumes where it left off instead of re-evaluating.
func (c *Client) StartExplore(ctx context.Context, spec ExploreSpec, opts ...JobOption[ExploreProgress]) *ExploreJob {
	eng := explore.New(c.suite())
	if c.st != nil {
		eng.WithStore(c.st)
	}
	return startJob[ExploreSpec, ExploreProgress, ExploreResult](ctx, spec, opts,
		func(ctx context.Context, progress func(ExploreProgress)) (*ExploreResult, error) {
			return eng.Run(ctx, spec, progress)
		})
}
