package repro

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func jobClient(t *testing.T) *Client {
	t.Helper()
	c, err := NewClient(WithOptions(Options{WarmupInstrs: 2_000, MeasureInstrs: 5_000}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestCampaignJob(t *testing.T) {
	c := jobClient(t)
	spec := CampaignSpec{Machine: "shrec", Benchmark: "crafty", Trials: 6, FaultRate: 2e-4, Seed: 9}

	var snaps atomic.Int64
	job := c.StartCampaign(context.Background(), spec,
		WithProgress(func(CampaignProgress) { snaps.Add(1) }))

	if got := job.Spec(); got != spec {
		t.Errorf("Spec() = %+v, want the spec as given", got)
	}
	res, err := job.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trials) != 6 || snaps.Load() == 0 {
		t.Fatalf("campaign job: %d trials, %d snapshots", len(res.Trials), snaps.Load())
	}
	select {
	case <-job.Done():
	default:
		t.Error("Done not closed after Wait returned")
	}
	res2, err := job.Result()
	if err != nil || res2 != res {
		t.Errorf("Result() = (%p, %v), want the same outcome Wait returned (%p)", res2, err, res)
	}
	// The synchronous wrapper must agree with the job it wraps.
	sync, err := c.Campaign(context.Background(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sync.Spec != res.Spec || len(sync.Trials) != len(res.Trials) {
		t.Errorf("deprecated Campaign diverged from CampaignJob")
	}
}

func TestExploreJob(t *testing.T) {
	c := jobClient(t)
	spec := ExploreSpec{
		Space:    ExploreSpace{Bases: []string{"ss2", "shrec"}, XScales: []float64{0.5, 1}},
		Strategy: "halving",
		Seed:     9,
	}
	job := c.StartExplore(context.Background(), spec)
	res, err := job.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Points != 4 || len(res.Frontier) == 0 {
		t.Fatalf("explore job: %d points, %d frontier entries", res.Points, len(res.Frontier))
	}
}

func TestJobResultWhileRunning(t *testing.T) {
	c := jobClient(t)
	spec := CampaignSpec{Machine: "shrec", Benchmark: "crafty", Trials: 20, FaultRate: 2e-4, Seed: 3}
	job := c.StartCampaign(context.Background(), spec)
	if _, err := job.Result(); err != nil && !errors.Is(err, ErrJobRunning) {
		t.Errorf("Result mid-run: %v, want ErrJobRunning (or completion)", err)
	}
	if _, err := job.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestJobCancel(t *testing.T) {
	c := jobClient(t)
	spec := CampaignSpec{Machine: "shrec", Benchmark: "crafty", Trials: 500, FaultRate: 2e-4, Seed: 5}
	job := c.StartCampaign(context.Background(), spec)
	job.Cancel()
	_, err := job.Wait(context.Background())
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled job returned %v, want context.Canceled", err)
	}
	// Cancel is idempotent and safe after completion.
	job.Cancel()
}

func TestJobWaitHonorsContext(t *testing.T) {
	c := jobClient(t)
	spec := CampaignSpec{Machine: "shrec", Benchmark: "crafty", Trials: 500, FaultRate: 2e-4, Seed: 7}
	job := c.StartCampaign(context.Background(), spec)
	defer func() {
		job.Cancel()
		job.Wait(context.Background())
	}()
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if _, err := job.Wait(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Wait under expired ctx returned %v, want DeadlineExceeded", err)
	}
}
