package repro

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/retry"
)

// Remote is an HTTP client for a shrecd server, with the edge hardening
// a flaky network (or a loaded server) requires baked in: every request
// retries transient failures with jittered exponential backoff under the
// caller's context, honoring 429/503 Retry-After hints from the
// server's load shedding, while 4xx validation failures fail
// immediately. It lets a driver script treat a remote shrecd like the
// in-process Client: submit a campaign, poll or wait, read the report.
type Remote struct {
	base     *url.URL
	hc       *http.Client
	policy   retry.Policy
	poll     time.Duration
	counters retry.Counters
}

// RemoteOption configures a Remote.
type RemoteOption func(*Remote)

// WithHTTPClient substitutes the transport (default: a client with a
// 30s per-request timeout).
func WithHTTPClient(hc *http.Client) RemoteOption {
	return func(r *Remote) { r.hc = hc }
}

// WithRetryPolicy overrides the retry behavior (default: 5 attempts,
// 100ms base delay doubling to 5s, half jitter).
func WithRetryPolicy(maxAttempts int, baseDelay, maxDelay time.Duration) RemoteOption {
	return func(r *Remote) {
		r.policy = retry.Policy{MaxAttempts: maxAttempts, BaseDelay: baseDelay, MaxDelay: maxDelay, Jitter: 0.5}
	}
}

// WithPollInterval sets how often WaitCampaign/WaitExploration poll the
// job status (default 250ms).
func WithPollInterval(d time.Duration) RemoteOption {
	return func(r *Remote) { r.poll = d }
}

// NewRemote builds a client for the shrecd server at baseURL
// (e.g. "http://localhost:8080").
func NewRemote(baseURL string, opts ...RemoteOption) (*Remote, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("repro: parsing base URL: %w", err)
	}
	if u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("repro: base URL %q needs a scheme and host", baseURL)
	}
	r := &Remote{
		base:   u,
		hc:     &http.Client{Timeout: 30 * time.Second},
		policy: retry.Default(),
		poll:   250 * time.Millisecond,
	}
	for _, o := range opts {
		o(r)
	}
	// Attach the counters after the options ran: WithRetryPolicy replaces
	// the whole policy value, and the counters must survive that.
	r.policy.Counters = &r.counters
	return r, nil
}

// RemoteMetrics is a snapshot of what the client's retry loops did
// across every request this Remote issued: how many HTTP attempts went
// out, how many were retries of a transient failure, and how many
// requests gave up (on a permanent 4xx-class error, or by exhausting
// the policy's attempts).
type RemoteMetrics struct {
	Attempts          uint64 `json:"attempts"`
	Retries           uint64 `json:"retries"`
	PermanentFailures uint64 `json:"permanent_failures"`
	Exhausted         uint64 `json:"exhausted"`
}

// Metrics reads the client's cumulative retry counters. Safe to call
// concurrently with in-flight requests.
func (r *Remote) Metrics() RemoteMetrics {
	return RemoteMetrics{
		Attempts:          r.counters.Attempts.Load(),
		Retries:           r.counters.Retries.Load(),
		PermanentFailures: r.counters.Permanent.Load(),
		Exhausted:         r.counters.Exhausted.Load(),
	}
}

// do issues one retried request: body (when non-nil) is sent as JSON,
// and the response body is decoded into out (when non-nil). Transient
// failures — network errors, 5xx, and shed 429s — are retried per the
// policy; a 429/503 Retry-After header overrides the backoff.
func (r *Remote) do(ctx context.Context, method, path string, body, out any) error {
	var payload []byte
	if body != nil {
		var err error
		if payload, err = json.Marshal(body); err != nil {
			return fmt.Errorf("repro: encoding %s %s body: %w", method, path, err)
		}
	}
	u := r.base.JoinPath(path).String()
	return r.policy.Do(ctx, func(ctx context.Context) error {
		var rd io.Reader
		if payload != nil {
			rd = bytes.NewReader(payload)
		}
		req, err := http.NewRequestWithContext(ctx, method, u, rd)
		if err != nil {
			return retry.Permanent(err)
		}
		if payload != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := r.hc.Do(req)
		if err != nil {
			return err // network errors are transient by default
		}
		defer resp.Body.Close()
		if resp.StatusCode >= 400 {
			return classifyHTTP(resp)
		}
		if out == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			return nil
		}
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return retry.Permanent(fmt.Errorf("repro: decoding %s %s response: %w", method, path, err))
		}
		return nil
	})
}

// classifyHTTP turns an error response into a retryable or permanent
// error. 429 (shed/saturated) and 503 honor Retry-After; other 5xx
// retry on the computed backoff; remaining 4xx are the caller's fault
// and fail immediately.
func classifyHTTP(resp *http.Response) error {
	msg := errorMessage(resp)
	err := fmt.Errorf("repro: %s %s: %s (%s)",
		resp.Request.Method, resp.Request.URL.Path, resp.Status, msg)
	switch {
	case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
		if d, ok := parseRetryAfter(resp.Header.Get("Retry-After")); ok {
			return retry.After(err, d)
		}
		return err
	case resp.StatusCode >= 500:
		return err
	default:
		return retry.Permanent(err)
	}
}

// errorMessage extracts the server's {"error": ...} body, bounded.
func errorMessage(resp *http.Response) string {
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(raw, &e) == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(raw))
}

// parseRetryAfter parses the delay-seconds form of Retry-After (the
// form shrecd emits); HTTP-date forms are ignored and fall back to the
// computed backoff.
func parseRetryAfter(v string) (time.Duration, bool) {
	if v == "" {
		return 0, false
	}
	secs, err := strconv.Atoi(strings.TrimSpace(v))
	if err != nil || secs < 0 {
		return 0, false
	}
	return time.Duration(secs) * time.Second, true
}

// RemoteSimulation is the POST /simulate response.
type RemoteSimulation struct {
	Machine   string          `json:"machine"`
	Benchmark string          `json:"benchmark"`
	Class     string          `json:"class"`
	HighIPC   bool            `json:"high_ipc"`
	IPC       float64         `json:"ipc"`
	CPI       float64         `json:"cpi"`
	Options   Options         `json:"options"`
	Stats     json.RawMessage `json:"stats"`
}

// Simulate runs one (machine, benchmark) pair on the server.
func (r *Remote) Simulate(ctx context.Context, machine, benchmark string) (RemoteSimulation, error) {
	var out RemoteSimulation
	err := r.do(ctx, http.MethodPost, "/simulate",
		map[string]string{"machine": machine, "benchmark": benchmark}, &out)
	return out, err
}

// Health fetches /healthz as raw JSON (store integrity, journal depth,
// cache counters).
func (r *Remote) Health(ctx context.Context) (json.RawMessage, error) {
	var out json.RawMessage
	err := r.do(ctx, http.MethodGet, "/healthz", nil, &out)
	return out, err
}

// RemoteJob identifies an asynchronous job on the server.
type RemoteJob struct {
	ID  string `json:"id"`
	URL string `json:"url"`
}

// RemoteJobStatus is a campaign or exploration status snapshot: the
// kind-specific spec/progress/report stay raw so one shape serves both.
type RemoteJobStatus struct {
	ID       string          `json:"id"`
	State    string          `json:"state"`
	Error    string          `json:"error,omitempty"`
	Progress json.RawMessage `json:"progress,omitempty"`
	Report   json.RawMessage `json:"report,omitempty"`
}

// Done reports whether the job reached a terminal state.
func (s RemoteJobStatus) Done() bool { return s.State == "done" || s.State == "failed" }

// Err converts a failed status into an error.
func (s RemoteJobStatus) Err() error {
	if s.State == "failed" {
		return fmt.Errorf("repro: remote job %s failed: %s", s.ID, s.Error)
	}
	return nil
}

// StartCampaign submits a fault-injection campaign; duplicate
// submissions of the same normalized spec join the running job.
func (r *Remote) StartCampaign(ctx context.Context, spec CampaignSpec) (RemoteJob, error) {
	var out RemoteJob
	err := r.do(ctx, http.MethodPost, "/campaigns", spec, &out)
	return out, err
}

// CampaignStatus polls one campaign.
func (r *Remote) CampaignStatus(ctx context.Context, id string) (RemoteJobStatus, error) {
	var out RemoteJobStatus
	err := r.do(ctx, http.MethodGet, "/campaigns/"+url.PathEscape(id), nil, &out)
	return out, err
}

// WaitCampaign polls until the campaign finishes (or ctx ends). A
// "failed" terminal state is returned as an error alongside the status.
func (r *Remote) WaitCampaign(ctx context.Context, id string) (RemoteJobStatus, error) {
	return r.wait(ctx, func(ctx context.Context) (RemoteJobStatus, error) {
		return r.CampaignStatus(ctx, id)
	})
}

// StartExploration submits a design-space exploration.
func (r *Remote) StartExploration(ctx context.Context, spec ExploreSpec) (RemoteJob, error) {
	var out RemoteJob
	err := r.do(ctx, http.MethodPost, "/explorations", spec, &out)
	return out, err
}

// ExplorationStatus polls one exploration.
func (r *Remote) ExplorationStatus(ctx context.Context, id string) (RemoteJobStatus, error) {
	var out RemoteJobStatus
	err := r.do(ctx, http.MethodGet, "/explorations/"+url.PathEscape(id), nil, &out)
	return out, err
}

// WaitExploration polls until the exploration finishes (or ctx ends).
func (r *Remote) WaitExploration(ctx context.Context, id string) (RemoteJobStatus, error) {
	return r.wait(ctx, func(ctx context.Context) (RemoteJobStatus, error) {
		return r.ExplorationStatus(ctx, id)
	})
}

// wait polls status until terminal. Transient poll failures are already
// retried inside do; a permanently failing poll aborts the wait.
func (r *Remote) wait(ctx context.Context, status func(context.Context) (RemoteJobStatus, error)) (RemoteJobStatus, error) {
	t := time.NewTicker(r.poll)
	defer t.Stop()
	for {
		st, err := status(ctx)
		if err != nil {
			return st, err
		}
		if st.Done() {
			return st, st.Err()
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-t.C:
		}
	}
}
