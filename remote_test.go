package repro

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/shrecd"
	"repro/internal/sim"
)

// remoteTestServer runs a real shrecd handler at tiny run lengths.
func remoteTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	opt := sim.Options{WarmupInstrs: 2_000, MeasureInstrs: 5_000}
	s := shrecd.NewWith(shrecd.Config{DefaultOptions: opt}, sim.NewSuite(opt))
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func TestRemoteSimulateAndCampaign(t *testing.T) {
	ts := remoteTestServer(t)
	r, err := NewRemote(ts.URL, WithPollInterval(10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	res, err := r.Simulate(ctx, "shrec", "swim")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.EqualFold(res.Machine, "shrec") || res.IPC <= 0 {
		t.Fatalf("bad remote simulation: %+v", res)
	}

	var spec CampaignSpec
	if err := json.Unmarshal([]byte(`{"machine":"shrec","benchmark":"crafty","trials":8,"fault_rate":2e-4,"seed":7}`), &spec); err != nil {
		t.Fatal(err)
	}
	job, err := r.StartCampaign(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if job.ID == "" || !strings.HasPrefix(job.URL, "/campaigns/") {
		t.Fatalf("bad job handle: %+v", job)
	}
	st, err := r.WaitCampaign(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "done" || !strings.Contains(string(st.Report), "Wilson") {
		t.Fatalf("campaign status %q, report %q", st.State, st.Report)
	}

	health, err := r.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(health), `"status"`) {
		t.Fatalf("bad health: %s", health)
	}
}

// TestRemoteRetriesSheddingWith429 pins the edge hardening: a server
// shedding load with 429 + Retry-After is retried (honoring the hint)
// until it recovers, without the caller noticing.
func TestRemoteRetriesSheddingWith429(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			_, _ = w.Write([]byte(`{"error":"shedding"}`))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"machine":"shrec","benchmark":"swim","ipc":1.5}`))
	}))
	t.Cleanup(ts.Close)

	r, err := NewRemote(ts.URL, WithRetryPolicy(5, time.Millisecond, 10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Simulate(context.Background(), "shrec", "swim")
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC != 1.5 || calls.Load() != 3 {
		t.Fatalf("ipc=%v calls=%d, want success on the third attempt", res.IPC, calls.Load())
	}
}

// TestRemoteDoesNotRetryClientErrors pins that validation failures are
// permanent: retrying a 400 would just re-send the same bad spec.
func TestRemoteDoesNotRetryClientErrors(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		_, _ = w.Write([]byte(`{"error":"unknown machine"}`))
	}))
	t.Cleanup(ts.Close)

	r, err := NewRemote(ts.URL, WithRetryPolicy(5, time.Millisecond, 10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.Simulate(context.Background(), "nope", "swim")
	if err == nil || !strings.Contains(err.Error(), "unknown machine") {
		t.Fatalf("err = %v, want the server's validation message", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("400 was retried: %d calls", calls.Load())
	}
}

// TestRemoteRetriesServerErrors pins that 5xx responses retry and that
// exhaustion reports the attempt count.
func TestRemoteRetriesServerErrors(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
		_, _ = w.Write([]byte(`{"error":"boom"}`))
	}))
	t.Cleanup(ts.Close)

	r, err := NewRemote(ts.URL, WithRetryPolicy(3, time.Millisecond, 5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	_, err = r.Health(context.Background())
	if err == nil || !strings.Contains(err.Error(), "3 attempts") {
		t.Fatalf("err = %v, want attempt-exhaustion", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("calls = %d, want 3", calls.Load())
	}
}

func TestNewRemoteValidatesURL(t *testing.T) {
	for _, bad := range []string{"", "not a url", "/just/a/path"} {
		if _, err := NewRemote(bad); err == nil {
			t.Fatalf("NewRemote(%q) accepted a bad base URL", bad)
		}
	}
}

// TestRemoteMetricsCountRetryOutcomes pins that the client's retry
// counters survive WithRetryPolicy (which replaces the policy value)
// and classify outcomes: transient 500s count as retried attempts, a
// 400 counts as a permanent failure, and running out of attempts
// counts as exhausted.
func TestRemoteMetricsCountRetryOutcomes(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.URL.Path == "/healthz" && calls.Add(1) <= 2:
			w.WriteHeader(http.StatusInternalServerError)
			_, _ = w.Write([]byte(`{"error":"boom"}`))
		case r.URL.Path == "/healthz":
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write([]byte(`{"status":"ok"}`))
		default: // POST /simulate
			w.WriteHeader(http.StatusBadRequest)
			_, _ = w.Write([]byte(`{"error":"unknown machine"}`))
		}
	}))
	t.Cleanup(ts.Close)

	r, err := NewRemote(ts.URL, WithRetryPolicy(5, time.Millisecond, 5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Health(context.Background()); err != nil {
		t.Fatalf("Health: %v", err)
	}
	if _, err := r.Simulate(context.Background(), "nope", "swim"); err == nil {
		t.Fatal("Simulate accepted an unknown machine")
	}

	m := r.Metrics()
	if m.Attempts != 4 { // 3 for /healthz + 1 for /simulate
		t.Errorf("Attempts = %d, want 4", m.Attempts)
	}
	if m.Retries != 2 {
		t.Errorf("Retries = %d, want 2", m.Retries)
	}
	if m.PermanentFailures != 1 {
		t.Errorf("PermanentFailures = %d, want 1", m.PermanentFailures)
	}
	if m.Exhausted != 0 {
		t.Errorf("Exhausted = %d, want 0", m.Exhausted)
	}
}
